module Fnv64 = Omni_util.Fnv64
module Machine = Omni_targets.Machine
module Certificate = Omni_cert.Certificate
module Check = Omni_cert.Check
module Metrics = Omni_obs.Metrics
module Risc = Omni_targets.Risc
module X86 = Omni_targets.X86

type tprog = P_risc of Risc.program | P_x86 of X86.program

(* Must agree with Omni_service.Exec.fingerprint (the cache and the
   certificates both use that formula); pinned by a test. *)
let fingerprint = function
  | P_risc p -> Fnv64.mix_int (Risc.fingerprint_program p) 1
  | P_x86 p -> Fnv64.mix_int (X86.fingerprint_program p) 2

let arch_of = function
  | P_risc p -> (
      match p.Risc.cfg.Risc.arch with
      | Risc.Mips -> Omni_targets.Arch.Mips
      | Risc.Sparc -> Omni_targets.Arch.Sparc
      | Risc.Ppc -> Omni_targets.Arch.Ppc)
  | P_x86 _ -> Omni_targets.Arch.X86

(* -- file names ------------------------------------------------------- *)

let seg_name gen = Printf.sprintf "seg-%04d.dat" gen
let journal_name gen = Printf.sprintf "journal-%04d.wal" gen
let current_name = "current"
let clean_name = "clean"

(* -- record framing --------------------------------------------------- *)

(* Segment record: kind(1) | len(4) | payload | fnv64(8), digest over
   everything before it. *)
let rec_overhead = 1 + 4 + 8

let kind_module = 1
let kind_translation = 2

let frame kind payload =
  let len = String.length payload in
  let b = Bytes.create (rec_overhead + len) in
  Bytes.set b 0 (Char.chr kind);
  Bytes.set_int32_le b 1 (Int32.of_int len);
  Bytes.blit_string payload 0 b 5 len;
  let ck = Fnv64.digest_string (Bytes.sub_string b 0 (5 + len)) in
  Bytes.set_int64_le b (5 + len) ck;
  Bytes.to_string b

(* Journal record: seq(8) | kind(1) | offset(8) | rec_len(4) |
   payload_digest(8) | fnv64(8) over the first 29 bytes. *)
let jrec_size = 37

let jframe ~seq ~kind ~offset ~rec_len ~payload_digest =
  let b = Bytes.create jrec_size in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.set b 8 (Char.chr kind);
  Bytes.set_int64_le b 9 (Int64.of_int offset);
  Bytes.set_int32_le b 17 (Int32.of_int rec_len);
  Bytes.set_int64_le b 21 payload_digest;
  Bytes.set_int64_le b 29 (Fnv64.digest_string (Bytes.sub_string b 0 29));
  Bytes.to_string b

(* -- typed quarantine ------------------------------------------------- *)

type corrupt =
  | Bad_record of { seq : int; detail : string }
  | Payload_digest_mismatch of { seq : int }
  | Bad_module of { seq : int; detail : string }
  | Bad_blob of { seq : int }
  | Bad_cert of { seq : int; detail : string }
  | Cert_unbound of { seq : int; detail : string }
  | Obligations_failed of { seq : int; detail : string }
  | Module_missing of { seq : int; digest : Fnv64.t }

let corrupt_seq = function
  | Bad_record { seq; _ }
  | Payload_digest_mismatch { seq }
  | Bad_module { seq; _ }
  | Bad_blob { seq }
  | Bad_cert { seq; _ }
  | Cert_unbound { seq; _ }
  | Obligations_failed { seq; _ }
  | Module_missing { seq; _ } ->
      seq

let corrupt_to_string = function
  | Bad_record { seq; detail } ->
      Printf.sprintf "seq %d: bad segment record (%s)" seq detail
  | Payload_digest_mismatch { seq } ->
      Printf.sprintf "seq %d: payload digest disagrees with journal" seq
  | Bad_module { seq; detail } ->
      Printf.sprintf "seq %d: module bytes no longer decode (%s)" seq detail
  | Bad_blob { seq } ->
      Printf.sprintf "seq %d: translation blob does not unmarshal" seq
  | Bad_cert { seq; detail } ->
      Printf.sprintf "seq %d: certificate does not decode (%s)" seq detail
  | Cert_unbound { seq; detail } ->
      Printf.sprintf "seq %d: certificate not bound to this translation (%s)"
        seq detail
  | Obligations_failed { seq; detail } ->
      Printf.sprintf "seq %d: witness obligations fail (%s)" seq detail
  | Module_missing { seq; digest } ->
      Printf.sprintf "seq %d: translation of unrecovered module %s" seq
        (Fnv64.to_hex digest)

type rtrans = {
  rt_module : Fnv64.t;
  rt_mode : Machine.mode;
  rt_opts : Machine.topts;
  rt_prog : tprog;
  rt_cert : Certificate.t;
  rt_fp : Fnv64.t;
}

type recovered = {
  r_clean : bool;
  r_modules : string list;
  r_translations : rtrans list;
  r_quarantined : corrupt list;
  r_torn : int;
  r_replayed : int;
}

(* -- generation pointer and clean marker ------------------------------ *)

let read_gen io =
  match Io.read io current_name with
  | None -> 0
  | Some text -> (
      (* "gen fnvhex\n": a corrupted pointer must read as generation 0
         (empty store), never crash. *)
      match String.split_on_char ' ' (String.trim text) with
      | [ g; ck ] -> (
          match int_of_string_opt g with
          | Some gen
            when gen >= 0 && Fnv64.to_hex (Fnv64.digest_string g) = ck ->
              gen
          | _ -> 0)
      | _ -> 0)

let gen_pointer gen =
  let g = string_of_int gen in
  Printf.sprintf "%s %s\n" g (Fnv64.to_hex (Fnv64.digest_string g))

let clean_marker gen journal =
  Printf.sprintf "%d %d %s\n" gen (String.length journal)
    (Fnv64.to_hex (Fnv64.digest_string journal))

let marker_valid io gen journal =
  match Io.read io clean_name with
  | None -> false
  | Some text -> String.trim text = String.trim (clean_marker gen journal)

(* Write-fsync-rename: the only way a marker or pointer ever appears. *)
let publish io name content =
  let tmp = name ^ ".tmp" in
  if Io.exists io tmp then Io.remove io tmp;
  Io.append io tmp content;
  Io.fsync io tmp;
  Io.rename io tmp name

(* -- recovery scan (pure: reads only) --------------------------------- *)

type scan = {
  sc_rec : recovered;
  sc_seg_len : int; (* logical end of the segment (committed records) *)
  sc_jlen : int; (* logical end of the journal *)
  sc_next_seq : int;
}

let u32 s off = Int32.to_int (Bytes.get_int32_le s off)
let u64 s off = Int64.to_int (Bytes.get_int64_le s off)

(* Validate one committed translation payload down to the witness.
   Returns a quarantine reason or the recovered translation. *)
let validate_translation ~eager ~seq ~modules payload :
    (rtrans, corrupt) result =
  let n = String.length payload in
  if n < 12 then Error (Bad_record { seq; detail = "short translation payload" })
  else
    let b = Bytes.of_string payload in
    let module_digest = Bytes.get_int64_le b 0 in
    let cert_len = u32 b 8 in
    if cert_len < 0 || 12 + cert_len > n then
      Error (Bad_record { seq; detail = "certificate length out of range" })
    else
      match Certificate.decode (String.sub payload 12 cert_len) with
      | Error e ->
          Error
            (Bad_cert { seq; detail = Certificate.decode_error_to_string e })
      | Ok cert -> (
          let blob = String.sub payload (12 + cert_len) (n - 12 - cert_len) in
          match
            (Marshal.from_string blob 0 : Machine.mode * Machine.topts * tprog)
          with
          | exception _ -> Error (Bad_blob { seq })
          | mode, opts, prog ->
              if not (Hashtbl.mem modules module_digest) then
                Error (Module_missing { seq; digest = module_digest })
              else
                let fp = fingerprint prog in
                let arch = arch_of prog in
                (match
                   Check.bind cert ~module_digest ~arch ~mode ~opts ~code_fp:fp
                 with
                | Error e ->
                    Error
                      (Cert_unbound { seq; detail = Check.error_to_string e })
                | Ok () ->
                    let obligations =
                      if not eager then Ok ()
                      else
                        match prog with
                        | P_risc p -> Check.check_risc cert p
                        | P_x86 p -> Check.check_x86 cert p
                    in
                    (match obligations with
                    | Error e ->
                        Error
                          (Obligations_failed
                             { seq; detail = Check.error_to_string e })
                    | Ok () ->
                        Ok
                          {
                            rt_module = module_digest;
                            rt_mode = mode;
                            rt_opts = opts;
                            rt_prog = prog;
                            rt_cert = cert;
                            rt_fp = fp;
                          })))

let scan ~eager io gen : scan =
  let seg = Option.value (Io.read io (seg_name gen)) ~default:"" in
  let journal = Option.value (Io.read io (journal_name gen)) ~default:"" in
  let jb = Bytes.of_string journal in
  let jn = Bytes.length jb in
  let modules : (Fnv64.t, string) Hashtbl.t = Hashtbl.create 8 in
  let module_order = ref [] in
  let translations = ref [] in
  let quarantined = ref [] in
  let torn = ref 0 in
  let replayed = ref 0 in
  let seg_len = ref 0 in
  let stop = ref false in
  let i = ref 0 in
  (* The journal is prefix-valid: the first record that fails its own
     checksum, breaks the sequence, or points past the durable segment
     ends the replay — everything after it is a torn tail. *)
  while (not !stop) && (!i + 1) * jrec_size <= jn do
    let off = !i * jrec_size in
    let ck = Bytes.get_int64_le jb (off + 29) in
    let body = Bytes.sub_string jb off 29 in
    if not (Int64.equal ck (Fnv64.digest_string body)) then begin
      incr torn;
      stop := true
    end
    else begin
      let seq = u64 jb off in
      let kind = Char.code (Bytes.get jb (off + 8)) in
      let offset = u64 jb (off + 9) in
      let rec_len = u32 jb (off + 17) in
      let payload_digest = Bytes.get_int64_le jb (off + 21) in
      if seq <> !i || offset <> !seg_len || rec_len < rec_overhead then begin
        incr torn;
        stop := true
      end
      else if offset + rec_len > String.length seg then begin
        (* committed in the journal but the segment bytes never became
           durable — the fsync-before-journal discipline was violated by
           the fault plan (or the tail really tore); drop from here *)
        incr torn;
        stop := true
      end
      else begin
        incr replayed;
        seg_len := offset + rec_len;
        let record = String.sub seg offset rec_len in
        let payload_len = u32 (Bytes.of_string record) 1 in
        let framing_ok =
          Char.code record.[0] = kind
          && payload_len = rec_len - rec_overhead
          &&
          let ck' =
            (Bytes.of_string record, rec_len - 8) |> fun (b, o) ->
            Bytes.get_int64_le b o
          in
          Int64.equal ck'
            (Fnv64.digest_string (String.sub record 0 (rec_len - 8)))
        in
        if not framing_ok then
          quarantined :=
            Bad_record { seq; detail = "framing or checksum" } :: !quarantined
        else begin
          let payload = String.sub record 5 payload_len in
          if not (Int64.equal payload_digest (Fnv64.digest_string payload))
          then quarantined := Payload_digest_mismatch { seq } :: !quarantined
          else if kind = kind_module then begin
            match Omnivm.Wire.decode payload with
            | exception e ->
                quarantined :=
                  Bad_module { seq; detail = Printexc.to_string e }
                  :: !quarantined
            | _exe ->
                if not (Hashtbl.mem modules payload_digest) then begin
                  Hashtbl.replace modules payload_digest payload;
                  module_order := payload :: !module_order
                end
          end
          else if kind = kind_translation then begin
            match validate_translation ~eager ~seq ~modules payload with
            | Error q -> quarantined := q :: !quarantined
            | Ok rt ->
                (* last write wins for one (module, arch, mode, opts) *)
                translations :=
                  rt
                  :: List.filter
                       (fun o ->
                         not
                           (Int64.equal o.rt_module rt.rt_module
                           && arch_of o.rt_prog = arch_of rt.rt_prog
                           && o.rt_mode = rt.rt_mode
                           && o.rt_opts = rt.rt_opts))
                       !translations
          end
          else
            quarantined :=
              Bad_record { seq; detail = Printf.sprintf "unknown kind %d" kind }
              :: !quarantined
        end;
        incr i
      end
    end
  done;
  let jlen = !i * jrec_size in
  if (not !stop) && jn > jlen then incr torn (* partial trailing record *);
  if String.length seg > !seg_len then incr torn (* unjournaled segment tail *);
  let clean =
    marker_valid io gen journal
    && !torn = 0
    && !quarantined = []
  in
  {
    sc_rec =
      {
        r_clean = clean;
        r_modules = List.rev !module_order;
        r_translations = List.rev !translations;
        r_quarantined = List.rev !quarantined;
        r_torn = !torn;
        r_replayed = !replayed;
      };
    sc_seg_len = !seg_len;
    sc_jlen = jlen;
    sc_next_seq = !i;
  }

(* -- the live store --------------------------------------------------- *)

type t = {
  io : Io.t;
  mu : Mutex.t;
  gen : int;
  mutable seq : int;
  mutable seg_len : int;
  mutable closed : bool;
  c_append : Metrics.counter;
}

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let bump metrics (r : recovered) =
  match metrics with
  | None -> ()
  | Some m ->
      Metrics.incr ~by:r.r_replayed (Metrics.counter m "persist.replay");
      Metrics.incr
        ~by:(List.length r.r_modules + List.length r.r_translations)
        (Metrics.counter m "persist.recovered");
      Metrics.incr
        ~by:(List.length r.r_quarantined)
        (Metrics.counter m "persist.quarantined");
      Metrics.incr ~by:r.r_torn (Metrics.counter m "persist.torn")

let open_ ?metrics io =
  let gen = read_gen io in
  let journal = Option.value (Io.read io (journal_name gen)) ~default:"" in
  (* A valid clean marker licenses skipping the eager obligation check:
     every warm hit re-checks its witness at admission anyway, so the
     lazy path defers exactly that work — it never skips it. *)
  let clean = marker_valid io gen journal in
  let sc = scan ~eager:(not clean) io gen in
  (* Drop torn tails so appends resume at the committed end, and consume
     the marker — the store is dirty until the next clean close. *)
  if
    (match Io.size io (seg_name gen) with
    | Some n -> n > sc.sc_seg_len
    | None -> false)
  then Io.truncate io (seg_name gen) sc.sc_seg_len;
  if
    (match Io.size io (journal_name gen) with
    | Some n -> n > sc.sc_jlen
    | None -> false)
  then Io.truncate io (journal_name gen) sc.sc_jlen;
  if Io.exists io clean_name then Io.remove io clean_name;
  bump metrics sc.sc_rec;
  let c_append =
    match metrics with
    | Some m -> Metrics.counter m "persist.append"
    | None -> Metrics.counter (Metrics.create ()) "persist.append"
  in
  ( {
      io;
      mu = Mutex.create ();
      gen;
      seq = sc.sc_next_seq;
      seg_len = sc.sc_seg_len;
      closed = false;
      c_append;
    },
    sc.sc_rec )

(* Commit one record: segment bytes first (made durable before anything
   references them), then the journal entry that gives them existence. *)
let append_record t kind payload =
  locked t.mu @@ fun () ->
  if t.closed then failwith "Omni_persist.Store: appending to a closed store";
  let record = frame kind payload in
  let seg = seg_name t.gen and journal = journal_name t.gen in
  Io.append t.io seg record;
  Io.fsync t.io seg;
  let jent =
    jframe ~seq:t.seq ~kind ~offset:t.seg_len ~rec_len:(String.length record)
      ~payload_digest:(Fnv64.digest_string payload)
  in
  Io.append t.io journal jent;
  Io.fsync t.io journal;
  t.seg_len <- t.seg_len + String.length record;
  t.seq <- t.seq + 1;
  Metrics.incr t.c_append

let append_module t bytes = append_record t kind_module bytes

let translation_payload ~module_digest ~mode ~opts ~cert prog =
  let cert_bytes = Certificate.encode cert in
  let blob =
    Marshal.to_string ((mode, opts, prog) : Machine.mode * Machine.topts * tprog)
      []
  in
  let b = Bytes.create (12 + String.length cert_bytes + String.length blob) in
  Bytes.set_int64_le b 0 module_digest;
  Bytes.set_int32_le b 8 (Int32.of_int (String.length cert_bytes));
  Bytes.blit_string cert_bytes 0 b 12 (String.length cert_bytes);
  Bytes.blit_string blob 0 b (12 + String.length cert_bytes)
    (String.length blob);
  Bytes.to_string b

let append_translation t ~module_digest ~mode ~opts ~cert prog =
  append_record t kind_translation
    (translation_payload ~module_digest ~mode ~opts ~cert prog)

let flush t = locked t.mu (fun () -> ())

let close t =
  locked t.mu @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    let journal =
      Option.value (Io.read t.io (journal_name t.gen)) ~default:""
    in
    publish t.io clean_name (clean_marker t.gen journal)
  end

(* -- offline tooling -------------------------------------------------- *)

type stat = {
  st_gen : int;
  st_seg_bytes : int;
  st_journal_bytes : int;
  st_records : int;
  st_clean : bool;
}

let stat io =
  let gen = read_gen io in
  let journal = Option.value (Io.read io (journal_name gen)) ~default:"" in
  {
    st_gen = gen;
    st_seg_bytes = Option.value (Io.size io (seg_name gen)) ~default:0;
    st_journal_bytes = String.length journal;
    st_records = String.length journal / jrec_size;
    st_clean = marker_valid io gen journal;
  }

let render_stat s =
  Printf.sprintf
    "generation %d: %d records, %d segment bytes, %d journal bytes, %s\n"
    s.st_gen s.st_records s.st_seg_bytes s.st_journal_bytes
    (if s.st_clean then "clean shutdown marker valid"
     else "no valid clean marker (dirty)")

let fsck io = (scan ~eager:true io (read_gen io)).sc_rec

let render_recovered r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "%s: %d journal records replayed; %d modules + %d translations \
     recovered; %d quarantined; %d torn tails dropped\n"
    (if r.r_clean then "clean" else "dirty")
    r.r_replayed
    (List.length r.r_modules)
    (List.length r.r_translations)
    (List.length r.r_quarantined)
    r.r_torn;
  List.iter
    (fun q -> Printf.bprintf b "  quarantined %s\n" (corrupt_to_string q))
    r.r_quarantined;
  Buffer.contents b

let compact ?metrics io =
  let gen = read_gen io in
  let sc = scan ~eager:true io gen in
  let r = sc.sc_rec in
  bump metrics r;
  let before =
    Option.value (Io.size io (seg_name gen)) ~default:0
    + Option.value (Io.size io (journal_name gen)) ~default:0
  in
  let gen' = gen + 1 in
  let seg' = seg_name gen' and journal' = journal_name gen' in
  if Io.exists io seg' then Io.remove io seg';
  if Io.exists io journal' then Io.remove io journal';
  (* Rebuild only the survivors, modules before the translations that
     reference them (replay order requires it). *)
  let seq = ref 0 in
  let seg_len = ref 0 in
  let jbuf = Buffer.create 256 in
  let sbuf = Buffer.create 1024 in
  let put kind payload =
    let record = frame kind payload in
    Buffer.add_string sbuf record;
    Buffer.add_string jbuf
      (jframe ~seq:!seq ~kind ~offset:!seg_len
         ~rec_len:(String.length record)
         ~payload_digest:(Fnv64.digest_string payload));
    incr seq;
    seg_len := !seg_len + String.length record
  in
  List.iter (fun bytes -> put kind_module bytes) r.r_modules;
  List.iter
    (fun rt ->
      put kind_translation
        (translation_payload ~module_digest:rt.rt_module ~mode:rt.rt_mode
           ~opts:rt.rt_opts ~cert:rt.rt_cert rt.rt_prog))
    r.r_translations;
  let journal'' = Buffer.contents jbuf in
  Io.append io seg' (Buffer.contents sbuf);
  Io.fsync io seg';
  Io.append io journal' journal'';
  Io.fsync io journal';
  (* the commit point: until this rename lands, recovery still reads the
     old generation untouched *)
  publish io current_name (gen_pointer gen');
  Io.remove io (seg_name gen);
  Io.remove io (journal_name gen);
  if Io.exists io clean_name then Io.remove io clean_name;
  publish io clean_name (clean_marker gen' journal'');
  let after =
    Option.value (Io.size io seg') ~default:0
    + Option.value (Io.size io journal') ~default:0
  in
  (r, (before, after))
