(** Filesystem capability for the persistent store.

    The store never touches the filesystem directly; it goes through one
    of these, so every disk failure mode can be injected deterministically
    — the disk analogue of {!Omni_net.Fault}'s wire damage. Two
    implementations:

    - {!real}: POSIX files rooted in one directory (flat names, no
      subdirectories), with genuine [fsync] and durable renames;
    - {!sim}: an in-memory disk model that distinguishes bytes merely
      written from bytes made durable by [fsync], plus an armed fault
      plan. A simulated crash ({!Crashed}) freezes the disk; {!reboot}
      discards everything volatile — exactly what a power cut does — and
      the store is then re-opened over the survivors.

    All fault indices are deterministic: mutating operations (append,
    fsync, rename, remove, truncate) are numbered from 0 in call order
    ({!mutations} reads the count), renames are numbered separately, so a
    seeded test can enumerate every kill point of a workload. *)

exception Crashed of string
(** The simulated process died at this operation. Every later operation
    on the same [t] re-raises until {!reboot}. Never raised by {!real}. *)

(** One armed fault. Operation indices count mutating operations; rename
    indices count renames only. *)
type fault =
  | Crash_at of int  (** die just before mutating operation [n] *)
  | Torn_write of { op : int; keep : int }
      (** append [op] tears: only the first [keep] bytes reach the
          platter (durably — the half-written sector survives), then the
          process dies *)
  | Bit_flip of { op : int; bit : int }
      (** append [op] writes one flipped bit (silent media corruption);
          the process continues, the lie is found at recovery *)
  | Short_read of { file : string; drop : int }
      (** reads of [file] lose their last [drop] bytes — a torn tail
          seen at read time *)
  | Drop_fsync  (** fsync reports success but makes nothing durable *)
  | Crash_before_rename of int
      (** die at rename [n], old name still in place *)
  | Crash_after_rename of int
      (** rename [n] commits durably, then the process dies *)

type t

val real : dir:string -> t
(** Files under [dir] (created, with parents, if missing). *)

val sim : ?faults:fault list -> unit -> t
(** Fresh empty simulated disk with the given fault plan armed. *)

val reboot : t -> unit
(** Simulate the machine coming back up: volatile (un-fsynced) bytes are
    gone, the crashed flag clears, the remaining fault plan stays armed.
    No-op on {!real}. *)

val disarm : t -> unit
(** Drop any remaining armed faults (sim only; no-op on real). *)

val mutations : t -> int
(** Mutating operations performed so far (sim counts; real returns 0) —
    the kill-point space for a crash matrix. *)

(* -- operations ------------------------------------------------------- *)

val read : t -> string -> string option
(** Whole-file contents; [None] if absent. The live process sees its own
    un-fsynced writes. *)

val exists : t -> string -> bool

val size : t -> string -> int option
(** Physical size in bytes; [None] if absent. *)

val append : t -> string -> string -> unit
(** Append bytes to the named file, creating it if missing. *)

val fsync : t -> string -> unit
(** Make the file's current bytes durable. Missing file is a no-op. *)

val rename : t -> string -> string -> unit
(** Atomic replace; the commit point of every multi-step update. Durable
    on return (the real implementation also syncs the directory). *)

val remove : t -> string -> unit
(** Delete; missing file is a no-op. *)

val truncate : t -> string -> int -> unit
(** Cut the file to [len] bytes (used to drop torn tails at recovery).
    Missing file is a no-op. *)
