exception Crashed of string

type fault =
  | Crash_at of int
  | Torn_write of { op : int; keep : int }
  | Bit_flip of { op : int; bit : int }
  | Short_read of { file : string; drop : int }
  | Drop_fsync
  | Crash_before_rename of int
  | Crash_after_rename of int

(* A simulated file is its full written content plus how much of it the
   platter actually holds. A crash rolls content back to the durable
   prefix; fsync advances the durable mark (unless dropped). *)
type sfile = { mutable content : string; mutable durable : int }

type sim_state = {
  files : (string, sfile) Hashtbl.t;
  mutable faults : fault list;
  mutable ops : int; (* mutating operations performed *)
  mutable renames : int;
  mutable crashed : bool;
}

type t = Real of string (* root directory *) | Sim of sim_state

(* -- real ------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let real ~dir =
  mkdir_p dir;
  Real dir

let sim ?(faults = []) () =
  Sim
    {
      files = Hashtbl.create 8;
      faults;
      ops = 0;
      renames = 0;
      crashed = false;
    }

let reboot = function
  | Real _ -> ()
  | Sim s ->
      Hashtbl.iter
        (fun _ f -> f.content <- String.sub f.content 0 f.durable)
        s.files;
      s.crashed <- false

let disarm = function Real _ -> () | Sim s -> s.faults <- []
let mutations = function Real _ -> 0 | Sim s -> s.ops

(* -- sim fault machinery ---------------------------------------------- *)

let crash s what =
  s.crashed <- true;
  raise (Crashed what)

let alive s = if s.crashed then raise (Crashed "disk is down (crashed)")

(* Number this mutating operation and die here if the plan says so. *)
let mutating s what =
  alive s;
  let op = s.ops in
  s.ops <- op + 1;
  if
    List.exists (function Crash_at n -> n = op | _ -> false) s.faults
  then crash s (Printf.sprintf "crash at op %d (%s)" op what);
  op

let sfile s name =
  match Hashtbl.find_opt s.files name with
  | Some f -> f
  | None ->
      let f = { content = ""; durable = 0 } in
      Hashtbl.replace s.files name f;
      f

let flip_bit data bit =
  let n = String.length data * 8 in
  if n = 0 then data
  else begin
    let bit = bit mod n in
    let b = Bytes.of_string data in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

(* -- operations ------------------------------------------------------- *)

let read t name =
  match t with
  | Real dir -> (
      let path = Filename.concat dir name in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          let n = in_channel_length ic in
          let data = really_input_string ic n in
          close_in ic;
          Some data)
  | Sim s -> (
      alive s;
      match Hashtbl.find_opt s.files name with
      | None -> None
      | Some f ->
          let data = f.content in
          let dropped =
            List.fold_left
              (fun acc fault ->
                match fault with
                | Short_read { file; drop } when file = name -> max acc drop
                | _ -> acc)
              0 s.faults
          in
          Some (String.sub data 0 (max 0 (String.length data - dropped))))

let exists t name =
  match t with
  | Real dir -> Sys.file_exists (Filename.concat dir name)
  | Sim s ->
      alive s;
      Hashtbl.mem s.files name

let size t name =
  match t with
  | Real dir -> (
      match (Unix.stat (Filename.concat dir name)).Unix.st_size with
      | n -> Some n
      | exception Unix.Unix_error _ -> None)
  | Sim s -> (
      alive s;
      match Hashtbl.find_opt s.files name with
      | None -> None
      | Some f -> Some (String.length f.content))

let append t name data =
  match t with
  | Real dir ->
      let oc =
        open_out_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644
          (Filename.concat dir name)
      in
      output_string oc data;
      close_out oc
  | Sim s -> (
      let op = mutating s (Printf.sprintf "append %s" name) in
      let f = sfile s name in
      let torn =
        List.find_opt
          (function Torn_write { op = n; _ } -> n = op | _ -> false)
          s.faults
      in
      match torn with
      | Some (Torn_write { keep; _ }) ->
          (* The half-write reached the platter: durable, then dead. *)
          let keep = min (max 0 keep) (String.length data) in
          f.content <- f.content ^ String.sub data 0 keep;
          f.durable <- String.length f.content;
          crash s (Printf.sprintf "torn write at op %d (%s)" op name)
      | _ ->
          let data =
            List.fold_left
              (fun data fault ->
                match fault with
                | Bit_flip { op = n; bit } when n = op -> flip_bit data bit
                | _ -> data)
              data s.faults
          in
          f.content <- f.content ^ data)

let fsync t name =
  match t with
  | Real dir -> (
      let path = Filename.concat dir name in
      match Unix.openfile path [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () -> Unix.fsync fd))
  | Sim s ->
      ignore (mutating s (Printf.sprintf "fsync %s" name));
      if not (List.mem Drop_fsync s.faults) then begin
        match Hashtbl.find_opt s.files name with
        | None -> ()
        | Some f -> f.durable <- String.length f.content
      end

(* Directory-entry durability: the real implementation syncs the parent
   directory after rename/remove so the new entry survives a crash; the
   sim models directory metadata as journaled (entries durable on
   return), which is what the rename faults then perturb. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let rename t src dst =
  match t with
  | Real dir ->
      Sys.rename (Filename.concat dir src) (Filename.concat dir dst);
      fsync_dir dir
  | Sim s ->
      ignore (mutating s (Printf.sprintf "rename %s -> %s" src dst));
      let r = s.renames in
      s.renames <- r + 1;
      if
        List.exists
          (function Crash_before_rename n -> n = r | _ -> false)
          s.faults
      then crash s (Printf.sprintf "crash before rename %d (%s)" r dst);
      (match Hashtbl.find_opt s.files src with
      | None -> raise (Sys_error (src ^ ": no such file"))
      | Some f ->
          Hashtbl.remove s.files src;
          (* the replace is atomic and journaled: both the entry and the
             bytes it points at survive as-is *)
          f.durable <- String.length f.content;
          Hashtbl.replace s.files dst f);
      if
        List.exists
          (function Crash_after_rename n -> n = r | _ -> false)
          s.faults
      then crash s (Printf.sprintf "crash after rename %d (%s)" r dst)

let remove t name =
  match t with
  | Real dir -> (
      match Sys.remove (Filename.concat dir name) with
      | () -> fsync_dir dir
      | exception Sys_error _ -> ())
  | Sim s ->
      ignore (mutating s (Printf.sprintf "remove %s" name));
      Hashtbl.remove s.files name

let truncate t name len =
  match t with
  | Real dir -> (
      try Unix.truncate (Filename.concat dir name) len
      with Unix.Unix_error _ -> ())
  | Sim s -> (
      ignore (mutating s (Printf.sprintf "truncate %s" name));
      match Hashtbl.find_opt s.files name with
      | None -> ()
      | Some f ->
          let len = min (max 0 len) (String.length f.content) in
          f.content <- String.sub f.content 0 len;
          f.durable <- min f.durable len)
