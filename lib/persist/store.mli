(** Crash-safe on-disk store for modules and certified translations.

    On disk, one generation of the store is two files plus two markers
    (all flat names under the {!Io.t} root, all little-endian):

    - [seg-<gen>.dat] — append-only data segment of self-checksummed
      records: [kind(1) | len(4) | payload(len) | fnv64(8)] where the
      digest covers kind+len+payload. Kind 1 is a module (payload = the
      wire bytes); kind 2 is a translation (payload = module digest(8) |
      cert len(4) | omni-cert/1 bytes | marshalled (mode, opts, program)).
    - [journal-<gen>.wal] — the write-ahead commit log: one fixed-size
      37-byte record per committed segment record: [seq(8) | kind(1) |
      offset(8) | rec_len(4) | payload_digest(8) | fnv64(8)]. A segment
      record exists, for recovery, exactly when its journal record is
      durable and valid — the segment is fsynced before the journal entry
      is appended, so the journal never points at bytes that were lost.
    - [current] — the generation pointer, replaced by write-fsync-rename
      (the commit point of {!compact}).
    - [clean] — the clean-shutdown marker ([gen jlen jdigest]), written
      by write-fsync-rename at {!close} and deleted at open; its presence
      and agreement with the journal licenses the fast recovery path.

    Recovery ({!open_}) replays the journal as a prefix-valid structure:
    the first torn or out-of-sequence journal record ends the replay and
    the tails of both files are dropped (counted in [persist.torn]). Each
    replayed record is then proven, not trusted: checksum, payload
    digest, module decode, certificate decode, {!Omni_cert.Check.bind}
    against the recomputed module digest and code fingerprint, and — on a
    dirty restart — the full per-instruction obligation check. Anything
    that lies is quarantined with a typed reason ([persist.quarantined]),
    never raised and never served. Only translations that carried a
    certificate are ever persisted, so every recovered translation has a
    witness to re-check.

    Threat model: the checksum/digest/witness chain detects arbitrary
    {e random} corruption (every fault {!Io.sim} can inject). FNV-64 is
    not collision-resistant against an adversary, and OCaml's [Marshal]
    is only reached behind a passing checksum — an attacker with write
    access to the store directory is outside the model, exactly as one
    with write access to the daemon binary is. *)

module Fnv64 = Omni_util.Fnv64
module Machine = Omni_targets.Machine
module Certificate = Omni_cert.Certificate

(** A translated program as the disk knows it — the persist layer's
    mirror of [Omni_service.Exec.translated], kept separate so this
    library sits below the service. *)
type tprog =
  | P_risc of Omni_targets.Risc.program
  | P_x86 of Omni_targets.X86.program

val fingerprint : tprog -> Fnv64.t
(** Content digest of the translated program; matches
    [Omni_service.Exec.fingerprint] on the corresponding translation
    (asserted by the test suite), so recovered fingerprints bind against
    certificates minted by the live path. *)

val arch_of : tprog -> Omni_targets.Arch.t

(** Why a replayed record was refused — the typed quarantine. [seq] is
    the journal sequence number of the offending record. *)
type corrupt =
  | Bad_record of { seq : int; detail : string }
      (** framing or checksum failure inside the segment record *)
  | Payload_digest_mismatch of { seq : int }
      (** segment payload disagrees with the journal's commit record *)
  | Bad_module of { seq : int; detail : string }
      (** stored wire bytes no longer decode *)
  | Bad_blob of { seq : int }
      (** the translation blob does not unmarshal *)
  | Bad_cert of { seq : int; detail : string }
      (** the stored certificate does not decode *)
  | Cert_unbound of { seq : int; detail : string }
      (** the certificate does not speak about this translation
          (digest / fingerprint / policy / opts / layout mismatch) *)
  | Obligations_failed of { seq : int; detail : string }
      (** the witness obligations fail against the recovered code *)
  | Module_missing of { seq : int; digest : Fnv64.t }
      (** a translation whose module did not survive recovery *)

val corrupt_to_string : corrupt -> string

val corrupt_seq : corrupt -> int

(** A recovered certified translation, ready for cache re-admission. *)
type rtrans = {
  rt_module : Fnv64.t;  (** digest of the module it translates *)
  rt_mode : Machine.mode;
  rt_opts : Machine.topts;
  rt_prog : tprog;
  rt_cert : Certificate.t;
  rt_fp : Fnv64.t;  (** recomputed (not stored) code fingerprint *)
}

(** What a recovery scan established. *)
type recovered = {
  r_clean : bool;  (** the clean-shutdown marker was present and valid *)
  r_modules : string list;  (** validated module wire bytes, oldest first *)
  r_translations : rtrans list;  (** validated translations, oldest first *)
  r_quarantined : corrupt list;
  r_torn : int;  (** torn tails dropped (journal and/or segment) *)
  r_replayed : int;  (** journal records replayed *)
}

type t

val open_ : ?metrics:Omni_obs.Metrics.t -> Io.t -> t * recovered
(** Open (or create) the store and run total recovery. Registers and
    bumps the [persist.{replay,recovered,quarantined,torn}] counters in
    [metrics]; never raises on any on-disk state — a store directory
    full of garbage opens empty with everything quarantined or torn.
    Truncates torn tails and consumes the clean marker, so the store is
    dirty until the next {!close}. *)

val append_module : t -> string -> unit
(** Journal one module's wire bytes (segment append, fsync, journal
    append, fsync — durable on return). Counted in [persist.append].
    Thread-safe. *)

val append_translation :
  t ->
  module_digest:Fnv64.t ->
  mode:Machine.mode ->
  opts:Machine.topts ->
  cert:Certificate.t ->
  tprog ->
  unit
(** Journal one certified translation. Same durability and counting as
    {!append_module}. Callers persist only certified (Sandbox-verified)
    translations; anything else has no witness to re-check at recovery. *)

val flush : t -> unit
(** Barrier: every accepted append is durable (appends are synchronous,
    so this only has to take and release the store lock). *)

val close : t -> unit
(** Flush and commit the clean-shutdown marker (write-fsync-rename).
    Further appends raise [Failure]. *)

(* -- offline tooling (omnirun store ...) ------------------------------ *)

type stat = {
  st_gen : int;
  st_seg_bytes : int;
  st_journal_bytes : int;
  st_records : int;  (** whole journal records physically present *)
  st_clean : bool;  (** marker present and consistent with the journal *)
}

val stat : Io.t -> stat
(** Cheap physical inspection — no replay, no validation, no mutation. *)

val render_stat : stat -> string

val fsck : Io.t -> recovered
(** Full eager recovery scan (obligations checked even if the marker is
    clean) without mutating anything on disk — report-only. *)

val render_recovered : recovered -> string

val compact : ?metrics:Omni_obs.Metrics.t -> Io.t -> recovered * (int * int)
(** Rewrite the store as a new generation containing only the records
    that survive an eager {!fsck}, committing by renaming [current], then
    delete the old generation and leave a clean marker. Returns the scan
    report and (bytes before, bytes after). Crash-safe at every step:
    until the rename commits, the old generation is untouched. *)
