(** Experiment harness: regenerates every table and figure of the paper's
    evaluation section. See DESIGN.md for the experiment index and
    EXPERIMENTS.md for recorded paper-vs-measured results.

    All relative-time numbers are simulated pipeline cycle counts; every
    run's output is validated against the OmniVM reference interpreter
    before its numbers are used. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine

(** One measured configuration of the translation pipeline. *)
type config =
  | Mobile_sfi  (** translated, sandboxed, per-arch translator opts *)
  | Mobile_nosfi
  | Mobile_sfi_noopt  (** translator optimizations disabled (Table 5) *)
  | Mobile_nosfi_noopt
  | Mobile_sfi_opt  (** + the guard-zone SFI optimization (paper §4.4) *)
  | Mobile_sfi_reads  (** + read protection (cited in §1, not measured) *)
  | Native_cc  (** vendor-compiler baseline *)
  | Native_gcc  (** portable-compiler baseline *)

val config_name : config -> string

type measurement = {
  m_cycles : int;
  m_instructions : int;
  m_omni_instructions : int;
  m_stats : Machine.stats option;
}

exception Harness_error of string

val measure :
  ?regfile_size:int ->
  Omni_workloads.Workloads.t ->
  Arch.t ->
  config ->
  measurement
(** Run one cell (cached); validates the run's output.
    @raise Harness_error on faults or wrong output. *)

val ratio :
  ?regfile_size:int ->
  Omni_workloads.Workloads.t ->
  Arch.t ->
  config ->
  config ->
  float
(** [ratio w arch num den] = cycles(num) / cycles(den). *)

val render_ratio_table :
  title:string ->
  columns:string list ->
  rows:string list ->
  cell:(string -> string -> float option) ->
  string
(** Text table with a computed average row (the paper's table format). *)

(** {2 The paper's artifacts} — each returns the rendered table/figure. *)

val table1 : size:Omni_workloads.Workloads.size -> string
val table2 : size:Omni_workloads.Workloads.size -> string
val table3 : size:Omni_workloads.Workloads.size -> string
val table4 : size:Omni_workloads.Workloads.size -> string
val table5 : size:Omni_workloads.Workloads.size -> string
val table6 : size:Omni_workloads.Workloads.size -> string
val figure1 : size:Omni_workloads.Workloads.size -> string
val figure2 : unit -> string

val ablation_sfi_opt : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: measures its §4.4 forecast that SFI-check
    optimization would halve the SFI overhead. *)

val ablation_read_protection : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: the cost of the read-protection capability §1 cites
    but Omniware did not incorporate. *)

val translation_speed : size:Omni_workloads.Workloads.size -> string
(** Wall-clock OmniVM-instructions-per-second for each translator. *)

val service_amortization : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: cold vs warm load times through the memoizing
    translation service ({!Omni_service.Service}) — each workload × arch
    is translated once, then served from cache with static
    re-verification; reports amortization, batch throughput, and the
    service counters. *)

val phase_breakdown : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: where the pipeline's time goes — compile, decode,
    load, translate, verify, run — as recorded by the
    {!Omni_obs.Trace} span instrumentation into a
    {!Omni_obs.Metrics} registry (no harness-side timing). *)

val remote_overhead : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: cold vs warm round trips through the distribution
    protocol ({!Omni_net}, in-memory pair transport) against the same
    requests on the in-process service — the protocol cost of serving
    mobile code over a wire, plus the per-ping protocol floor. *)

val resilience : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: loopback serving throughput under seeded fault
    injection ({!Omni_net.Fault}) at rates 0 / 1% / 5% per frame, with a
    retrying client on a manual clock. Every run's output is validated
    against the in-process service; reports requests, injected faults,
    retries, and round time per rate. *)

val isolation : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: the cost of execution supervision — the
    wall-clock watchdog's cooperative poll ({!Omnivm.Watchdog}) at
    K ∈ {1k, 16k, 64k} instructions against a no-watchdog baseline,
    outputs validated bit-for-bit (an armed watchdog with a generous
    deadline must never perturb execution). *)

val cert_amortization : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: proof-carrying translation ({!Omni_cert}) — the
    one-time cost of certifying a translation against the per-hit cost
    of a full static re-verification vs the witness check, per arch ×
    certifiable SFI policy, plus an end-to-end validation that the
    witness-checked serving path produces bit-identical output. *)

val concurrency : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: parallel multi-tenant serving — a burst of seeded
    requests dispatched through one shared {!Omni_net.Server} by
    D ∈ \{1, 2, 4, 8\} worker domains (the domain pool's dispatch, minus
    sockets), reporting wall time, throughput, and p50/p95/p99 request
    latency per pool size. Every concurrent round must answer
    bit-identically to a serial reference round and the shared service
    counters must sum exactly, or the experiment aborts. *)

val guest_front_end : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: the StackVM guest front-end ({!Omni_guest}) — lift
    time, oracle-steps vs lifted OmniVM instruction expansion, and the
    SFI overhead of lifted modules per arch. Every run is validated
    byte-for-byte against the guest reference interpreter. *)

val fastpath : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: the pre-decoded closure-threaded fast path
    ({!Omnivm.Fastinterp}) against the baseline interpreter —
    steady-state wall-clock per retired OmniVM instruction on both
    workload families (MiniC-compiled and guest-lifted, outputs
    validated bit-for-bit), fusion statistics and the one-time
    pre-decode cost, plus the SFI-overhead table extended with a
    padding dimension: simulated cycles relative to native (cc) for
    every translation-time pad mode ({!Omni_sfi.Policy.pad}) per arch. *)

val persistence : size:Omni_workloads.Workloads.size -> string
(** Beyond the paper: restart costs of the crash-safe persistent store
    ({!Omni_persist}) — one submit+translate round measured with no
    store, cold with journaling (the append overhead), reopened dirty
    (kill -9: journal replay plus full witness re-proof of every
    translation) and reopened clean (the shutdown-marker fast path),
    then served warm from the recovered cache: zero re-translations,
    witness checks only. *)

val bench_snapshot : size:Omni_workloads.Workloads.size -> string
(** Machine-readable snapshot of every subsystem bench's hot paths
    (the contents of [BENCH_10.json]): stable JSON, integer microseconds
    of CPU time, with a flat ["hot_paths"] object that [make bench-gate]
    diffs across runs. The ["concurrency"] section additionally reports
    wall-clock throughput/latency per pool size; only its one-domain
    round is gated (multi-domain walls depend on the host's cores). *)

val all_tables : size:Omni_workloads.Workloads.size -> string
