(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (section 4). See DESIGN.md for the experiment index.

   All numbers are simulated cycle counts from the target pipeline models;
   each table reports execution time RELATIVE to a native-compiler baseline
   on the same simulated machine, exactly as the paper does. Every run's
   output is validated against the OmniVM interpreter's output, so a
   reported number can never come from a miscompiled run. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module Arch = Omni_targets.Arch

type config =
  | Mobile_sfi (* translated, SFI on, per-arch translator opts *)
  | Mobile_nosfi
  | Mobile_sfi_noopt (* translator optimizations disabled *)
  | Mobile_nosfi_noopt
  | Mobile_sfi_opt (* + the guard-zone SFI optimization of paper 4.4 *)
  | Mobile_sfi_reads (* + read protection (cited in paper 1, not measured) *)
  | Native_cc
  | Native_gcc

let config_name = function
  | Mobile_sfi -> "sfi"
  | Mobile_nosfi -> "no-sfi"
  | Mobile_sfi_noopt -> "sfi/noopt"
  | Mobile_nosfi_noopt -> "no-sfi/noopt"
  | Mobile_sfi_opt -> "sfi/opt"
  | Mobile_sfi_reads -> "sfi/reads"
  | Native_cc -> "native-cc"
  | Native_gcc -> "native-gcc"

let all_archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

type measurement = {
  m_cycles : int;
  m_instructions : int;
  m_omni_instructions : int;
  m_stats : Machine.stats option;
}

exception Harness_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Harness_error s)) fmt

(* Compile + expected-output cache, keyed by (workload, regfile size). *)
type prepared = {
  p_name : string;
  p_exe : Omnivm.Exe.t;
  p_expected : string;
}

let prepare_cache : (string * int, prepared) Hashtbl.t = Hashtbl.create 16

let prepare ?(regfile_size = 16) (w : Omni_workloads.Workloads.t) : prepared =
  match Hashtbl.find_opt prepare_cache (w.name, regfile_size) with
  | Some p -> p
  | None ->
      let options = { Minic.Driver.opt_level = Minic.Opt.O2; regfile_size } in
      let exe = Minic.Driver.compile_exe ~options ~name:w.name w.source in
      let r = Api.run_exe ~engine:Api.Interp ~fuel:4_000_000_000 exe in
      (match r.Api.outcome with
      | Machine.Exited 0 -> ()
      | Machine.Exited c -> fail "%s exited %d under the interpreter" w.name c
      | Machine.Faulted f ->
          fail "%s faulted under the interpreter: %s" w.name
            (Omnivm.Fault.to_string f)
      | Machine.Out_of_fuel -> fail "%s ran out of fuel" w.name);
      let p = { p_name = w.name; p_exe = exe; p_expected = r.Api.output } in
      Hashtbl.replace prepare_cache (w.name, regfile_size) p;
      p

let mode_and_opts arch = function
  | Mobile_sfi ->
      (Machine.Mobile (Omni_sfi.Policy.make ()), Api.mobile_opts arch)
  | Mobile_nosfi -> (Machine.Mobile Omni_sfi.Policy.off, Api.mobile_opts arch)
  | Mobile_sfi_noopt ->
      (Machine.Mobile (Omni_sfi.Policy.make ()), Machine.no_opts)
  | Mobile_nosfi_noopt -> (Machine.Mobile Omni_sfi.Policy.off, Machine.no_opts)
  | Mobile_sfi_opt ->
      ( Machine.Mobile (Omni_sfi.Policy.make ()),
        { (Api.mobile_opts arch) with Machine.sfi_opt = true } )
  | Mobile_sfi_reads ->
      ( Machine.Mobile (Omni_sfi.Policy.make ~protect_reads:true ()),
        Api.mobile_opts arch )
  | Native_cc -> (Machine.Native Machine.Cc, Machine.all_opts)
  | Native_gcc -> (Machine.Native Machine.Gcc, Machine.all_opts)

let run_cache : (string * int * string * string, measurement) Hashtbl.t =
  Hashtbl.create 64

(* Run one (workload, arch, config) cell; validates output. *)
let measure ?(regfile_size = 16) (w : Omni_workloads.Workloads.t)
    (arch : Arch.t) (config : config) : measurement =
  let key = (w.name, regfile_size, Arch.name arch, config_name config) in
  match Hashtbl.find_opt run_cache key with
  | Some m -> m
  | None ->
      let p = prepare ~regfile_size w in
      let mode, opts = mode_and_opts arch config in
      let r =
        Api.run_exe ~engine:(Api.Target arch) ~mode ~opts
          ~fuel:4_000_000_000 p.p_exe
      in
      (match r.Api.outcome with
      | Machine.Exited 0 -> ()
      | Machine.Exited c ->
          fail "%s/%s/%s exited %d" w.name (Arch.name arch)
            (config_name config) c
      | Machine.Faulted f ->
          fail "%s/%s/%s faulted: %s" w.name (Arch.name arch)
            (config_name config) (Omnivm.Fault.to_string f)
      | Machine.Out_of_fuel ->
          fail "%s/%s/%s out of fuel" w.name (Arch.name arch)
            (config_name config));
      if not (String.equal r.Api.output p.p_expected) then
        fail "%s/%s/%s produced wrong output" w.name (Arch.name arch)
          (config_name config);
      let stats = r.Api.stats in
      let m =
        {
          m_cycles = r.Api.cycles;
          m_instructions = r.Api.instructions;
          m_omni_instructions =
            (match stats with
            | Some s -> s.Machine.omni_instructions
            | None -> 0);
          m_stats = stats;
        }
      in
      Hashtbl.replace run_cache key m;
      m

let ratio ?regfile_size w arch num den =
  let a = measure ?regfile_size w arch num in
  let b = measure w arch den in
  float_of_int a.m_cycles /. float_of_int b.m_cycles

(* --- table rendering --- *)

let render_ratio_table ~title ~columns ~rows ~(cell : string -> string -> float option)
    : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let w = 11 in
  Buffer.add_string buf (Printf.sprintf "%-10s" "program");
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%*s" w c)) columns;
  Buffer.add_char buf '\n';
  let totals = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%-10s" r);
      List.iter
        (fun c ->
          match cell r c with
          | Some v ->
              Hashtbl.replace totals c
                (v :: Option.value ~default:[] (Hashtbl.find_opt totals c));
              Buffer.add_string buf (Printf.sprintf "%*.2f" w v)
          | None -> Buffer.add_string buf (Printf.sprintf "%*s" w "-"))
        columns;
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (Printf.sprintf "%-10s" "average");
  List.iter
    (fun c ->
      match Hashtbl.find_opt totals c with
      | Some vs ->
          let avg = List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs) in
          Buffer.add_string buf (Printf.sprintf "%*.2f" w avg)
      | None -> Buffer.add_string buf (Printf.sprintf "%*s" w "-"))
    columns;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- the tables --- *)

let workloads ~size = Omni_workloads.Workloads.all ~size

(* Table 1: translated + SFI relative to native cc. *)
let table1 ~size =
  let ws = workloads ~size in
  render_ratio_table
    ~title:
      "Table 1: execution time of translated code with SFI, relative to \
       native code (cc)"
    ~columns:(List.map Arch.name all_archs)
    ~rows:(List.map (fun (w : Omni_workloads.Workloads.t) -> w.name) ws)
    ~cell:(fun r c ->
      let w = List.find (fun (w : Omni_workloads.Workloads.t) -> w.name = r) ws in
      let arch = Option.get (Arch.of_string c) in
      Some (ratio w arch Mobile_sfi Native_cc))

(* Table 2: average overhead vs Sparc native for register file sizes. *)
let table2 ~size =
  let ws = workloads ~size in
  let sizes = [ 8; 10; 12; 14; 16 ] in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Table 2: average execution time of mobile code relative to native \
     Sparc (cc),\nfor OmniVM register file sizes\n";
  Buffer.add_string buf "registers   overhead\n";
  List.iter
    (fun n ->
      let rs =
        List.map
          (fun w -> ratio ~regfile_size:n w Arch.Sparc Mobile_sfi Native_cc)
          ws
      in
      let avg = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
      Buffer.add_string buf (Printf.sprintf "%9d   %8.2f\n" n avg))
    sizes;
  Buffer.contents buf

(* Tables 3/4/5: SFI and no-SFI columns per architecture. *)
let sfi_pair_table ~size ~title ~num_sfi ~num_nosfi ~den =
  let ws = workloads ~size in
  let columns =
    List.concat_map
      (fun a -> [ Arch.name a ^ "+sfi"; Arch.name a ])
      all_archs
  in
  render_ratio_table ~title ~columns
    ~rows:(List.map (fun (w : Omni_workloads.Workloads.t) -> w.name) ws)
    ~cell:(fun r c ->
      let w = List.find (fun (w : Omni_workloads.Workloads.t) -> w.name = r) ws in
      let sfi = Filename.check_suffix c "+sfi" in
      let aname = if sfi then Filename.chop_suffix c "+sfi" else c in
      let arch = Option.get (Arch.of_string aname) in
      Some (ratio w arch (if sfi then num_sfi else num_nosfi) den))

let table3 ~size =
  sfi_pair_table ~size
    ~title:
      "Table 3: execution time of mobile code relative to native code (cc)"
    ~num_sfi:Mobile_sfi ~num_nosfi:Mobile_nosfi ~den:Native_cc

let table4 ~size =
  sfi_pair_table ~size
    ~title:
      "Table 4: execution time of mobile code relative to native code (gcc)"
    ~num_sfi:Mobile_sfi ~num_nosfi:Mobile_nosfi ~den:Native_gcc

let table5 ~size =
  sfi_pair_table ~size
    ~title:
      "Table 5: execution time of mobile code without translator \
       optimizations,\nrelative to native code (cc)"
    ~num_sfi:Mobile_sfi_noopt ~num_nosfi:Mobile_nosfi_noopt ~den:Native_cc

let table6 ~size =
  let ws = workloads ~size in
  render_ratio_table
    ~title:
      "Table 6: execution time of native code (gcc) relative to native \
       code (cc)"
    ~columns:(List.map Arch.name all_archs)
    ~rows:(List.map (fun (w : Omni_workloads.Workloads.t) -> w.name) ws)
    ~cell:(fun r c ->
      let w = List.find (fun (w : Omni_workloads.Workloads.t) -> w.name = r) ws in
      let arch = Option.get (Arch.of_string c) in
      Some (ratio w arch Native_gcc Native_cc))

(* Figure 1: dynamic expansion by origin on Mips and PowerPC. *)
let figure1 ~size =
  let ws = workloads ~size in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 1: expansion introduced by translation (extra native \
     instructions\nper OmniVM instruction executed, by origin; translated \
     with SFI)\n\n";
  List.iter
    (fun arch ->
      Buffer.add_string buf (Printf.sprintf "[%s]\n" (Arch.name arch));
      Buffer.add_string buf (Printf.sprintf "%-10s" "program");
      List.iter
        (fun o ->
          if o <> Machine.Core then
            Buffer.add_string buf (Printf.sprintf "%8s" (Machine.origin_name o)))
        Machine.all_origins;
      Buffer.add_string buf (Printf.sprintf "%8s\n" "total");
      List.iter
        (fun (w : Omni_workloads.Workloads.t) ->
          let m = measure w arch Mobile_sfi in
          match m.m_stats with
          | None -> ()
          | Some s ->
              Buffer.add_string buf (Printf.sprintf "%-10s" w.name);
              let profile = Machine.expansion_profile s in
              let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 profile in
              List.iter
                (fun (_, v) -> Buffer.add_string buf (Printf.sprintf "%8.3f" v))
                profile;
              Buffer.add_string buf (Printf.sprintf "%8.3f\n" total))
        ws;
      (* a small ASCII bar chart of the totals *)
      Buffer.add_char buf '\n')
    [ Arch.Mips; Arch.Ppc ];
  Buffer.contents buf

(* Figure 2: the universal mobile-code substrate (structural). *)
let figure2 () =
  String.concat "\n"
    [ "Figure 2: a universal substrate for mobile code";
      "";
      "   C       MiniC     (any language with an OmniVM compiler)";
      "   |         |";
      "   +----+----+";
      "        v";
      "   OmniVM mobile module  (one artifact, shipped unchanged)";
      "        |";
      "        |  load-time translation + software fault isolation";
      "        v";
      "  +---------+---------+---------+---------+";
      "  |  MIPS   |  SPARC  | PowerPC |   x86   |";
      "  | R4400   |         |   601   | Pentium |";
      "  +---------+---------+---------+---------+";
      "" ]

(* Translation-speed measurement (the paper's load-time argument). *)
let translation_speed ~size =
  let ws = workloads ~size in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Translation speed: OmniVM instructions translated per second (load \
     time)\n";
  Buffer.add_string buf (Printf.sprintf "%-10s %10s" "program" "omni-instrs");
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "%12s" (Arch.name a)))
    all_archs;
  Buffer.add_char buf '\n';
  List.iter
    (fun (w : Omni_workloads.Workloads.t) ->
      let p = prepare w in
      let n = Array.length p.p_exe.Omnivm.Exe.text in
      Buffer.add_string buf (Printf.sprintf "%-10s %10d" w.name n);
      List.iter
        (fun arch ->
          let mode = Machine.Mobile (Omni_sfi.Policy.make ()) in
          let opts = Api.mobile_opts arch in
          let t0 = Sys.time () in
          let reps = 20 in
          for _ = 1 to reps do
            ignore (Api.translate ~mode ~opts arch p.p_exe)
          done;
          let dt = (Sys.time () -. t0) /. float_of_int reps in
          let rate = float_of_int n /. dt /. 1e6 in
          Buffer.add_string buf (Printf.sprintf "%10.1fM" rate))
        all_archs;
      Buffer.add_char buf '\n')
    ws;
  Buffer.contents buf

(* Ablation (beyond the paper's measurements): the SFI-check optimization
   the paper forecast in section 4.4 ("we expect optimization will cut this
   overhead in half"): reuse of the sandboxed dedicated register across
   nearby stores to the same base. Reported as SFI overhead relative to the
   same translator without SFI, with and without the optimization. *)
let ablation_sfi_opt ~size =
  let ws = workloads ~size in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Ablation: SFI overhead with the guard-zone check optimization\n\
     (overhead = cycles relative to the same translator without SFI)\n";
  Buffer.add_string buf (Printf.sprintf "%-10s" "program");
  let archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc ] in
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%12s%12s" (Arch.name a) "+opt"))
    archs;
  Buffer.add_char buf '\n';
  let totals = Array.make (List.length archs * 2) 0.0 in
  List.iter
    (fun (w : Omni_workloads.Workloads.t) ->
      Buffer.add_string buf (Printf.sprintf "%-10s" w.name);
      List.iteri
        (fun i a ->
          let base = ratio w a Mobile_sfi Mobile_nosfi in
          let opt = ratio w a Mobile_sfi_opt Mobile_nosfi in
          totals.(2 * i) <- totals.(2 * i) +. base;
          totals.((2 * i) + 1) <- totals.((2 * i) + 1) +. opt;
          Buffer.add_string buf (Printf.sprintf "%12.3f%12.3f" base opt))
        archs;
      Buffer.add_char buf '\n')
    ws;
  Buffer.add_string buf (Printf.sprintf "%-10s" "average");
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%12.3f" (t /. float_of_int (List.length ws))))
    totals;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Ablation: the cost of full read protection (paper section 1: "Software
   fault isolation can also support efficient read protection...
   Omniware does not yet incorporate these capabilities"). Reported as
   total protection overhead relative to no SFI at all. *)
let ablation_read_protection ~size =
  let ws = workloads ~size in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Ablation: write-only SFI (the paper's configuration) vs full\n\
     read+write protection, relative to unprotected translation\n";
  Buffer.add_string buf (Printf.sprintf "%-10s" "program");
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%12s%12s" (Arch.name a) "+reads"))
    all_archs;
  Buffer.add_char buf '\n';
  let totals = Array.make (List.length all_archs * 2) 0.0 in
  List.iter
    (fun (w : Omni_workloads.Workloads.t) ->
      Buffer.add_string buf (Printf.sprintf "%-10s" w.name);
      List.iteri
        (fun i a ->
          let wr = ratio w a Mobile_sfi Mobile_nosfi in
          let full = ratio w a Mobile_sfi_reads Mobile_nosfi in
          totals.(2 * i) <- totals.(2 * i) +. wr;
          totals.((2 * i) + 1) <- totals.((2 * i) + 1) +. full;
          Buffer.add_string buf (Printf.sprintf "%12.3f%12.3f" wr full))
        all_archs;
      Buffer.add_char buf '\n')
    ws;
  Buffer.add_string buf (Printf.sprintf "%-10s" "average");
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%12.3f" (t /. float_of_int (List.length ws))))
    totals;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Serving experiment (beyond the paper): cold vs warm translation
   amortization. The paper's load-time argument is that translation must be
   fast because every load pays it; a serving host goes one step further
   and pays the translator once per (module, arch, config), re-verifying
   cached code on every subsequent load. Each request still gets a fresh
   isolated image. *)
let service_amortization ~size =
  let module Svc = Omni_service.Service in
  let module SC = Omni_service.Counters in
  let module Exec = Omni_service.Exec in
  let ws = workloads ~size in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Service: cold vs warm loads through the memoizing translation cache\n\
     (every request instantiates a fresh isolated image; a cold load pays\n\
     translate + verify, a warm load pays static re-verification only)\n\n";
  let svc = Svc.create () in
  (* Trace with a Null sink into the service's own registry: no span
     storage, but every phase lands in the "phase.*" histograms, so the
     breakdown below and the serving counters come from one place. *)
  let tracer =
    Omni_obs.Trace.make ~metrics:(Svc.metrics svc) Omni_obs.Trace.Null
  in
  Omni_obs.Trace.with_current tracer @@ fun () ->
  let handles =
    List.map
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        (w, p, Svc.submit svc (Omnivm.Wire.encode p.p_exe)))
      ws
  in
  let fuel = 4_000_000_000 in
  let load_all ~check arch =
    List.iter
      (fun ((w : Omni_workloads.Workloads.t), p, h) ->
        let r = Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc h in
        if check && not (String.equal r.Exec.output p.p_expected) then
          fail "service: %s/%s produced wrong output" w.name (Arch.name arch))
      handles
  in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %15s %15s %10s\n" "arch" "cold-load (ms)"
       "warm-load (ms)" "amortize");
  let warm_rounds = 3 in
  List.iter
    (fun arch ->
      let cold0 = (Svc.stats svc).SC.s_cold_translate_s in
      load_all ~check:true arch;
      let cold = (Svc.stats svc).SC.s_cold_translate_s -. cold0 in
      let warm0 = (Svc.stats svc).SC.s_warm_admit_s in
      for _ = 1 to warm_rounds do
        load_all ~check:true arch
      done;
      let warm =
        ((Svc.stats svc).SC.s_warm_admit_s -. warm0)
        /. float_of_int warm_rounds
      in
      Buffer.add_string buf
        (Printf.sprintf "%-8s %15.2f %15.2f %9.0fx\n" (Arch.name arch)
           (1e3 *. cold) (1e3 *. warm)
           (cold /. Float.max 1e-9 warm)))
    all_archs;
  (* Throughput of a fully warm mix through the batch driver. *)
  let reqs =
    Array.of_list
      (List.concat_map
         (fun (_, _, h) ->
           List.map
             (fun arch ->
               { Svc.rq_handle = h; rq_engine = Exec.Target arch;
                 rq_sfi = true })
             all_archs)
         handles)
  in
  let report = Svc.run_batch ~fuel svc reqs in
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Svc.render_batch report);
  Buffer.add_string buf (Svc.render_stats svc);
  let c = Svc.stats svc in
  let distinct = List.length handles * List.length all_archs in
  Buffer.add_string buf
    (Printf.sprintf
       "invariant: translations (%d) = distinct configs (%d), hits (%d) > 0: \
        %s\n"
       c.SC.s_translations distinct c.SC.s_hits
       (if c.SC.s_translations = distinct && c.SC.s_hits > 0 then "OK"
        else "VIOLATED"));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Omni_obs.Metrics.render_phases
       (Omni_obs.Metrics.snapshot (Svc.metrics svc)));
  Buffer.contents buf

(* Per-phase pipeline breakdown (the observability tentpole, end to end):
   compile each workload from source, ship the bytes through the serving
   path (decode, load, translate, verify) and run on the interpreter and
   every target — all under a Null-sink tracer feeding one metrics
   registry, so the table below is exactly what the span instrumentation
   recorded, with no harness-side timing. *)
let phase_breakdown ~size =
  let module Svc = Omni_service.Service in
  let module Exec = Omni_service.Exec in
  let ws = workloads ~size in
  let m = Omni_obs.Metrics.create () in
  let tracer = Omni_obs.Trace.make ~metrics:m Omni_obs.Trace.Null in
  Omni_obs.Trace.with_current tracer @@ fun () ->
  let svc = Svc.create ~metrics:m () in
  let fuel = 4_000_000_000 in
  List.iter
    (fun (w : Omni_workloads.Workloads.t) ->
      let bytes = Minic.Driver.compile_wire ~name:w.name w.source in
      let h = Svc.submit svc bytes in
      ignore (Svc.instantiate ~fuel svc h);
      List.iter
        (fun arch ->
          ignore (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc h))
        all_archs)
    ws;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Per-phase pipeline breakdown: compile -> decode -> load -> translate\n\
     -> verify -> run, as recorded by the span tracer's metrics registry\n\
     (every workload, interpreter + all four targets, serving path)\n\n";
  Buffer.add_string buf
    (Omni_obs.Metrics.render_phases (Omni_obs.Metrics.snapshot m));
  Buffer.contents buf

(* Remote serving overhead: the same requests through the distribution
   protocol — frame encode/checksum/decode both ways over the in-memory
   pair transport, zero scheduling noise — against the identical requests
   on the in-process service. The delta is the pure protocol cost of
   putting the translation cache behind a wire. *)
let remote_overhead ~size =
  let module Svc = Omni_service.Service in
  let module Exec = Omni_service.Exec in
  let module Net = Omni_net in
  let ws = workloads ~size in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Remote serving: cold vs warm round trips through the distribution\n\
     protocol (in-memory pair transport) vs the in-process service.\n\
     Every remote run's output is validated against the local result.\n\n";
  let fuel = 4_000_000_000 in
  (* remote stack: service behind a server behind the loopback client *)
  let svc_r = Svc.create () in
  let server = Net.Server.create svc_r in
  let client = Net.Client.loopback server in
  (* ping round trip: the protocol floor (frame codec + dispatch only) *)
  let pings = 1000 in
  let t0 = Sys.time () in
  for _ = 1 to pings do
    Net.Client.ping client
  done;
  let ping_us = 1e6 *. (Sys.time () -. t0) /. float_of_int pings in
  Buffer.add_string buf
    (Printf.sprintf "protocol floor: %.1f us per ping round trip\n\n" ping_us);
  (* identical module set on both stacks *)
  let prepared =
    List.map
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        (p, Omnivm.Wire.encode p.p_exe))
      ws
  in
  let svc_l = Svc.create () in
  let remote_handles =
    List.map (fun (p, bytes) -> (p, Net.Client.submit client bytes)) prepared
  in
  let local_handles =
    List.map (fun (p, bytes) -> (p, Svc.submit svc_l bytes)) prepared
  in
  let time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let remote_round arch ~check () =
    List.iter
      (fun (p, h) ->
        let r = Net.Client.run ~engine:(Exec.Target arch) ~fuel client h in
        if check && not (String.equal r.Exec.output p.p_expected) then
          fail "remote: %s/%s produced wrong output" p.p_name (Arch.name arch))
      remote_handles
  in
  let local_round arch () =
    List.iter
      (fun (_, h) ->
        ignore (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc_l h))
      local_handles
  in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %15s %15s %15s %10s\n" "arch" "cold-remote (ms)"
       "warm-remote (ms)" "warm-local (ms)" "overhead");
  let warm_rounds = 3 in
  List.iter
    (fun arch ->
      let cold_r = time (remote_round arch ~check:true) in
      let warm_r =
        time (fun () ->
            for _ = 1 to warm_rounds do
              remote_round arch ~check:true ()
            done)
        /. float_of_int warm_rounds
      in
      ignore (time (local_round arch));
      let warm_l =
        time (fun () ->
            for _ = 1 to warm_rounds do
              local_round arch ()
            done)
        /. float_of_int warm_rounds
      in
      Buffer.add_string buf
        (Printf.sprintf "%-8s %15.2f %15.2f %15.2f %9.2fx\n" (Arch.name arch)
           (1e3 *. cold_r) (1e3 *. warm_r) (1e3 *. warm_l)
           (warm_r /. Float.max 1e-9 warm_l)))
    all_archs;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "remote service counters: ";
  Buffer.add_string buf (Net.Client.stats_json client);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Resilience under injected faults: the same serving loop as
   remote_overhead, but the loopback wire is wrapped in the seeded fault
   injector and the client retries under a manual clock (backoff is
   accounted, never actually slept). Every run's output is still
   validated bit-for-bit against the in-process service — the claim is
   not "it mostly works", it is "a faulty wire costs retries, never
   answers". *)
let resilience ~size =
  let module Svc = Omni_service.Service in
  let module Exec = Omni_service.Exec in
  let module Net = Omni_net in
  let ws = workloads ~size in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Resilience: loopback serving throughput under seeded fault injection\n\
     (drop/corrupt/truncate/stall/close at rate p per frame), retrying\n\
     client, manual clock. Outputs validated against the local service.\n\n";
  let fuel = 4_000_000_000 in
  let prepared =
    List.map
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        (p, Omnivm.Wire.encode p.p_exe))
      ws
  in
  let svc_l = Svc.create () in
  let local_handles =
    List.map (fun (p, bytes) -> (p, Svc.submit svc_l bytes)) prepared
  in
  let local_output arch h =
    (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc_l h).Exec.output
  in
  let rounds = 3 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %10s %10s %10s %10s %12s\n" "rate" "requests"
       "injected" "retries" "rejected" "round (ms)");
  List.iter
    (fun rate ->
      let svc = Svc.create () in
      let server = Net.Server.create svc in
      let retry = { Net.Retry.default with max_attempts = 12 } in
      let env = Net.Retry.manual_env () in
      let armed =
        if rate > 0. then
          Some
            (Net.Fault.arm ~metrics:(Svc.metrics svc)
               (Net.Fault.seeded ~seed:42 ~rate ()))
        else None
      in
      let client = Net.Client.loopback ~retry ~env ?fault:armed server in
      (* retry/fallback counters land on the ambient tracer's registry;
         point it at the service's so one snapshot tells the story *)
      let tracer =
        Omni_obs.Trace.make ~metrics:(Svc.metrics svc) Omni_obs.Trace.Null
      in
      Omni_obs.Trace.with_current tracer @@ fun () ->
      let handles =
        List.map
          (fun (p, bytes) -> (p, Net.Client.submit client bytes))
          prepared
      in
      let round () =
        List.iter
          (fun arch ->
            List.iter
              (fun (p, h) ->
                let r =
                  Net.Client.run ~engine:(Exec.Target arch) ~fuel client h
                in
                let lh = List.assq p local_handles in
                if not (String.equal r.Exec.output (local_output arch lh))
                then
                  fail "resilience: %s/%s wrong output at fault rate %g"
                    p.p_name (Arch.name arch) rate)
              handles)
          all_archs
      in
      let t0 = Sys.time () in
      for _ = 1 to rounds do
        round ()
      done;
      let per_round = 1e3 *. (Sys.time () -. t0) /. float_of_int rounds in
      let reg = Svc.metrics svc in
      let c name = Omni_obs.Metrics.value (Omni_obs.Metrics.counter reg name) in
      Buffer.add_string buf
        (Printf.sprintf "%-8g %10d %10d %10d %10d %12.2f\n" rate
           (c "net.requests")
           (match armed with
           | Some a -> Net.Fault.injected a
           | None -> 0)
           (c "net.retry") (c "net.limit.rejected") per_round))
    [ 0.0; 0.01; 0.05 ];
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Watchdog overhead: the wall-clock deadline is polled cooperatively —
   one counter decrement per instruction, a clock reading every K
   instructions. Measured against a no-watchdog baseline with the
   deadline far in the future: the cost of being interruptible, not of
   being interrupted. Outputs are validated bit-for-bit — an armed
   watchdog must never perturb execution. *)
let isolation ~size =
  let module Exec = Omni_service.Exec in
  let module Supervise = Omni_service.Supervise in
  let ws = workloads ~size in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Isolation: wall-clock watchdog poll overhead on the interpreter\n\
     (whole workload suite per round; deadline far in the future).\n\n";
  let fuel = 4_000_000_000 in
  let prepared = List.map prepare ws in
  let round poll_every () =
    List.iter
      (fun p ->
        let img = Exec.load p.p_exe in
        let watchdog =
          Option.map
            (fun k -> Supervise.watchdog ~poll_every:k ~budget_s:1e9 ())
            poll_every
        in
        let r = Exec.run_interp ~fuel ?watchdog img in
        if not (String.equal r.Exec.output p.p_expected) then
          fail "isolation: %s wrong output under watchdog" p.p_name)
      prepared
  in
  let rounds = 3 in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to rounds do
      f ()
    done;
    (Sys.time () -. t0) /. float_of_int rounds
  in
  (* warm the prepare cache so compilation never lands in a timing *)
  ignore (time (round None));
  let base = time (round None) in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %12s %10s\n" "poll every" "round (ms)" "overhead");
  Buffer.add_string buf
    (Printf.sprintf "%-12s %12.2f %10s\n" "off" (1e3 *. base) "1.00x");
  List.iter
    (fun k ->
      let t = time (round (Some k)) in
      Buffer.add_string buf
        (Printf.sprintf "%-12d %12.2f %9.2fx\n" k (1e3 *. t)
           (t /. Float.max 1e-9 base)))
    [ 1_024; 16_384; 65_536 ];
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Proof-carrying translation: produce-once / check-cheap. For each arch
   and each certifiable SFI policy, translate + certify every workload
   once (the cold-path cost, paid per distinct module), then time the
   full static verifier against the witness checker on identical
   translated code — the two candidate costs of a warm cache admission.
   Certification only applies to Sandbox-mode policies (Guard and Off
   translations carry no Wahbe-style masking sequences to witness). *)

let cert_policies =
  [ ("sandbox", Omni_sfi.Policy.make ());
    ("sandbox+reads", Omni_sfi.Policy.make ~protect_reads:true ()) ]

type cert_cell = {
  cc_arch : string;
  cc_policy : string;
  cc_produce_s : float;  (* certify the whole suite once *)
  cc_full_s : float;  (* full static re-verify, whole suite, per round *)
  cc_check_s : float;  (* witness check, whole suite, per round *)
  cc_bytes : int;  (* total encoded omni-cert/1 bytes for the suite *)
}

let cert_measure ~size : cert_cell list =
  let module Exec = Omni_service.Exec in
  let module Cert = Omni_cert.Certificate in
  let ws = workloads ~size in
  List.concat_map
    (fun arch ->
      List.map
        (fun (pname, pol) ->
          let mode = Machine.Mobile pol in
          let opts = Api.mobile_opts arch in
          let items =
            List.map
              (fun (w : Omni_workloads.Workloads.t) ->
                let p = prepare w in
                let digest =
                  Omni_util.Fnv64.digest_string (Omnivm.Wire.encode p.p_exe)
                in
                (p, digest, Exec.translate ~mode ~opts arch p.p_exe))
              ws
          in
          let t0 = Sys.time () in
          let certs =
            List.map
              (fun (p, digest, tr) ->
                match Exec.certify ~module_digest:digest ~mode ~opts tr with
                | Ok c -> (p, digest, tr, Exec.fingerprint tr, c)
                | Error msg ->
                    fail "cert: %s/%s/%s refused certification: %s" p.p_name
                      (Arch.name arch) pname msg)
              items
          in
          let produce = Sys.time () -. t0 in
          let bytes =
            List.fold_left
              (fun acc (_, _, _, _, c) -> acc + String.length (Cert.encode c))
              0 certs
          in
          (* Warm-admission candidate A: the full static verifier — what
             every cache hit paid before witnesses existed. *)
          let run_full () =
            List.iter
              (fun ((p : prepared), _, tr, _, _) ->
                match Exec.verify tr with
                | Ok () -> ()
                | Error msg ->
                    fail "cert: full verify refused %s/%s/%s: %s" p.p_name
                      (Arch.name arch) pname msg)
              certs
          in
          (* Warm-admission candidate B: the witness check (the cache
             stores the code fingerprint, so pass it as the cache does). *)
          let run_check () =
            List.iter
              (fun ((p : prepared), digest, tr, fp, c) ->
                match
                  Exec.check_cert ~module_digest:digest ~mode ~opts
                    ~code_fp:fp c tr
                with
                | Ok () -> ()
                | Error msg ->
                    fail "cert: witness check refused %s/%s/%s: %s" p.p_name
                      (Arch.name arch) pname msg)
              certs
          in
          (* Adaptive paired timing: per candidate, double the batch until
             one batch takes at least 50ms of CPU time (so neither number
             sits at the clock's resolution floor), then time the two
             candidates ALTERNATELY for five rounds and keep each one's
             minimum. Alternation matters: external interference (other
             tenants, frequency shifts) arrives in bursts longer than one
             batch, so back-to-back batches of the two candidates see the
             same conditions and the per-candidate minima land in the same
             quiet window — where sequential timing lets a burst inflate
             one column but not the other. The min is the right estimator
             for "how fast is this code": interference is additive. *)
          let calibrate f =
            f ();
            (* warmup *)
            let rec go batch =
              let t0 = Sys.time () in
              for _ = 1 to batch do
                f ()
              done;
              if Sys.time () -. t0 >= 0.05 then batch else go (batch * 2)
            in
            go 1
          in
          let batch_full = calibrate run_full in
          let batch_check = calibrate run_check in
          let best_full = ref infinity and best_check = ref infinity in
          for _ = 1 to 5 do
            let t0 = Sys.time () in
            for _ = 1 to batch_full do
              run_full ()
            done;
            let e = Sys.time () -. t0 in
            if e < !best_full then best_full := e;
            let t0 = Sys.time () in
            for _ = 1 to batch_check do
              run_check ()
            done;
            let e = Sys.time () -. t0 in
            if e < !best_check then best_check := e
          done;
          let full = !best_full /. float_of_int batch_full in
          let check = !best_check /. float_of_int batch_check in
          {
            cc_arch = Arch.name arch;
            cc_policy = pname;
            cc_produce_s = produce;
            cc_full_s = full;
            cc_check_s = check;
            cc_bytes = bytes;
          })
        cert_policies)
    all_archs

(* End-to-end honesty check for the numbers above: run every workload
   twice per arch through a serving stack — the second (warm) admission
   goes through the witness check — and insist the output is bit-identical
   to the interpreter's, and that the witness path actually ran. *)
let cert_validate ~size =
  let module Svc = Omni_service.Service in
  let module SC = Omni_service.Counters in
  let module Exec = Omni_service.Exec in
  let ws = workloads ~size in
  let svc = Svc.create () in
  let fuel = 4_000_000_000 in
  let handles =
    List.map
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        (p, Svc.submit svc (Omnivm.Wire.encode p.p_exe)))
      ws
  in
  List.iter
    (fun arch ->
      List.iter
        (fun ((p : prepared), h) ->
          for _ = 1 to 2 do
            let r = Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc h in
            if not (String.equal r.Exec.output p.p_expected) then
              fail "cert: %s/%s wrong output on the witness-checked path"
                p.p_name (Arch.name arch)
          done)
        handles)
    all_archs;
  let c = Svc.stats svc in
  if c.SC.s_cert_checks = 0 then
    fail "cert: warm admissions never took the witness-check path";
  if c.SC.s_verify_fail > 0 then
    fail "cert: %d warm admissions were rejected" c.SC.s_verify_fail;
  c

let cert_amortization ~size =
  let module SC = Omni_service.Counters in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Proof-carrying translation: produce-once safety witnesses vs per-hit\n\
     full re-verification (whole workload suite per cell; produce = certify\n\
     once, the other columns are one warm admission of the suite).\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-14s %12s %16s %18s %9s %7s\n" "arch" "policy"
       "produce (ms)" "full-verify (ms)" "witness-check (ms)" "speedup"
       "bytes");
  let cells = cert_measure ~size in
  let min_speedup = ref infinity in
  List.iter
    (fun c ->
      let speedup = c.cc_full_s /. Float.max 1e-9 c.cc_check_s in
      if speedup < !min_speedup then min_speedup := speedup;
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-14s %12.2f %16.3f %18.3f %8.1fx %7d\n"
           c.cc_arch c.cc_policy (1e3 *. c.cc_produce_s) (1e3 *. c.cc_full_s)
           (1e3 *. c.cc_check_s) speedup c.cc_bytes))
    cells;
  let stats = cert_validate ~size in
  Buffer.add_string buf
    (Printf.sprintf
       "\nwitness-checked serving path: outputs bit-identical to the\n\
        interpreter on every workload x arch (%d witness checks, %d full\n\
        re-verifies, %d failures); minimum speedup %.1fx (gate: >= 5x)\n"
       stats.SC.s_cert_checks stats.SC.s_cert_full_verify
       stats.SC.s_verify_fail !min_speedup);
  if !min_speedup < 5.0 then
    Buffer.add_string buf "WARNING: speedup below the 5x acceptance gate\n";
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parallel serving: seeded concurrent load on one shared server ---

   A burst of seeded requests dispatched through ONE shared server — one
   service, one sharded store and cache, atomic counters — by D worker
   domains, D in {1, 2, 4, 8}, each calling [Server.handle_request]
   directly (the same dispatch the domain pool's workers run, minus the
   socket plumbing). Request i belongs to worker (i mod D). Correctness
   is asserted, not hoped for: every response is digested and compared
   bit-for-bit against a serial reference round, and the service
   counters must add up exactly — every miss is one distinct translation
   configuration, every other admission a hit, instantiations equal to
   requests served. Latency is per-request wall time around the
   dispatch; round time and throughput use the wall clock
   ([Unix.gettimeofday]) because the CPU clock sums across domains. *)

type conc_row = {
  cy_domains : int;
  cy_wall_s : float;  (** round wall time, spawn to last join *)
  cy_rps : float;
  cy_p50_us : int;
  cy_p95_us : int;
  cy_p99_us : int;
}

type conc_run = {
  cy_rows : conc_row list;
  cy_requests : int;  (** requests per round *)
  cy_tenants : int;  (** distinct tenant modules in the mix *)
  cy_configs : int;  (** distinct (module, arch, sfi) translation configs *)
  cy_serial_cpu_s : float;  (** CPU time of the one-domain round *)
  cy_cores : int;  (** [Domain.recommended_domain_count ()] *)
}

(* Four small tenant modules with distinct outputs and distinct dynamic
   shapes (arithmetic loop, recursion, memory traffic, I/O chatter).
   The paper suite would be the wrong load here: its runs are tens of
   milliseconds of pure simulation each, which swamps the serving-layer
   effects this experiment is about. Small modules give request service
   times in the low milliseconds, where dispatch, cache, and scheduling
   contention are actually visible. *)
let conc_tenants =
  [
    ( "conc-sum",
      {| int main(void) {
           int i; int s = 0;
           for (i = 0; i < 800; i++) s = s + i * 3;
           print_int(s); putchar(10); return 0; } |} );
    ( "conc-fib",
      {| int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
         int main(void) { print_int(f(13)); putchar(10); return 0; } |} );
    ( "conc-mem",
      {| int a[256];
         int main(void) {
           int i; int s = 0;
           for (i = 0; i < 256; i++) a[i] = i * 7;
           for (i = 0; i < 256; i++) s = s + a[255 - i];
           print_int(s); putchar(10); return 0; } |} );
    ( "conc-io",
      {| int main(void) {
           int i;
           for (i = 0; i < 40; i++) { print_int(i * i); putchar(32); }
           putchar(10); return 0; } |} );
  ]

let concurrency_measure ~size : conc_run =
  let module Svc = Omni_service.Service in
  let module SC = Omni_service.Counters in
  let module Exec = Omni_service.Exec in
  let module Net = Omni_net in
  let module M = Net.Message in
  let fuel = 50_000_000 in
  let n =
    match size with Omni_workloads.Workloads.Test -> 192 | _ -> 384
  in
  let svc = Svc.create () in
  let server = Net.Server.create svc in
  let handles =
    conc_tenants
    |> List.map (fun (name, src) ->
           match
             Net.Server.handle_request server (M.Submit (Api.compile ~name src))
           with
           | M.Submitted d -> d
           | _ -> fail "concurrency: submit refused")
    |> Array.of_list
  in
  let rng = Omni_util.Lcg.create 1996 in
  let schedule =
    Array.init n (fun _ ->
        let h = handles.(Omni_util.Lcg.int rng (Array.length handles)) in
        let arch = List.nth all_archs (Omni_util.Lcg.int rng 4) in
        let sfi = Omni_util.Lcg.int rng 4 > 0 in
        {
          M.rs_handle = h;
          rs_engine = Exec.Target arch;
          rs_sfi = sfi;
          rs_mode = M.M_default;
          rs_fuel = Some fuel;
          rs_deadline_s = None;
          rs_want_cert = false;
        })
  in
  let configs =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun rs -> Hashtbl.replace tbl (rs.M.rs_handle, rs.M.rs_engine, rs.M.rs_sfi) ())
      schedule;
    Hashtbl.length tbl
  in
  let dispatch i =
    let fr = M.encode_resp (Net.Server.handle_request server (M.Run schedule.(i))) in
    Omni_util.Fnv64.digest_string
      (Printf.sprintf "%d:%s" fr.Net.Frame.tag fr.Net.Frame.payload)
  in
  (* The serial reference round doubles as the warm-up: after it, every
     configuration the schedule can ask for is cached, and its answers
     are the bit-identity baseline for every concurrent round. *)
  let reference = Array.init n dispatch in
  let after_ref = Svc.stats svc in
  if after_ref.SC.s_misses <> configs then
    fail "concurrency: %d misses for %d distinct configs" after_ref.SC.s_misses
      configs;
  if after_ref.SC.s_hits + after_ref.SC.s_misses <> n then
    fail "concurrency: reference round saw %d cache lookups for %d requests"
      (after_ref.SC.s_hits + after_ref.SC.s_misses)
      n;
  let run_round domains =
    let lat = Array.make n 0. in
    let out = Array.make n 0L in
    let work d () =
      let i = ref d in
      while !i < n do
        let t0 = Unix.gettimeofday () in
        out.(!i) <- dispatch !i;
        lat.(!i) <- Unix.gettimeofday () -. t0;
        i := !i + domains
      done
    in
    let w0 = Unix.gettimeofday () in
    let c0 = Sys.time () in
    let workers = List.init domains (fun d -> Domain.spawn (work d)) in
    List.iter Domain.join workers;
    let wall = Unix.gettimeofday () -. w0 in
    let cpu = Sys.time () -. c0 in
    Array.iteri
      (fun i d ->
        if not (Int64.equal d reference.(i)) then
          fail "concurrency: request %d diverged under %d domains" i domains)
      out;
    Array.sort compare lat;
    let pct p = int_of_float (1e6 *. lat.(min (n - 1) (p * n / 100))) in
    ( {
        cy_domains = domains;
        cy_wall_s = wall;
        cy_rps = float_of_int n /. Float.max 1e-9 wall;
        cy_p50_us = pct 50;
        cy_p95_us = pct 95;
        cy_p99_us = pct 99;
      },
      cpu )
  in
  let pool_sizes = [ 1; 2; 4; 8 ] in
  let measured = List.map run_round pool_sizes in
  let final = Svc.stats svc in
  let rounds = List.length pool_sizes in
  if final.SC.s_misses <> configs then
    fail "concurrency: warm rounds translated (%d misses, expected %d)"
      final.SC.s_misses configs;
  if final.SC.s_hits <> after_ref.SC.s_hits + (rounds * n) then
    fail "concurrency: hit counter lost updates (%d, expected %d)"
      final.SC.s_hits
      (after_ref.SC.s_hits + (rounds * n));
  if final.SC.s_instantiations <> (rounds + 1) * n then
    fail "concurrency: %d instantiations for %d dispatches"
      final.SC.s_instantiations
      ((rounds + 1) * n);
  if final.SC.s_verify_fail > 0 then
    fail "concurrency: %d warm admissions rejected" final.SC.s_verify_fail;
  {
    cy_rows = List.map fst measured;
    cy_requests = n;
    cy_tenants = Array.length handles;
    cy_configs = configs;
    cy_serial_cpu_s = snd (List.hd measured);
    cy_cores = Domain.recommended_domain_count ();
  }

let concurrency ~size =
  let c = concurrency_measure ~size in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "Parallel serving: %d seeded warm requests (%d distinct translation\n\
     configurations across %d tenant modules x 4 archs, SFI mostly on)\n\
     dispatched through one shared server by D worker domains. Every round's\n\
     responses are bit-identical to the serial reference and the shared\n\
     counters sum exactly, or this table refuses to print.\n\n"
    c.cy_requests c.cy_configs c.cy_tenants;
  Printf.bprintf buf "%-8s %11s %9s %10s %10s %10s\n" "domains" "wall (ms)"
    "req/s" "p50 (us)" "p95 (us)" "p99 (us)";
  List.iter
    (fun r ->
      Printf.bprintf buf "%-8d %11.1f %9.0f %10d %10d %10d\n" r.cy_domains
        (1e3 *. r.cy_wall_s) r.cy_rps r.cy_p50_us r.cy_p95_us r.cy_p99_us)
    c.cy_rows;
  Printf.bprintf buf
    "\nhost reports %d recommended domain(s): domains beyond the physical\n\
     cores contend on the minor-GC stop-the-world barrier, so oversizing\n\
     the pool adds tail latency without adding throughput — size pools to\n\
     cores, not tenants.\n\n"
    c.cy_cores;
  Buffer.contents buf

(* --- guest front-end: StackVM -> OmniVM lifting ----------------------- *)

(* Assemble + oracle-run + lift cache for the guest workloads. The oracle
   output is the ground truth every lifted run must reproduce byte for
   byte, exactly as [prepare] uses the OmniVM interpreter for MiniC. *)
type gprepared = {
  g_name : string;
  g_prog : Omni_guest.Isa.program;
  g_exe : Omnivm.Exe.t;
  g_expected : string;
  g_oracle_steps : int; (* guest ops the oracle executed *)
}

let gprepare_cache : (string, gprepared) Hashtbl.t = Hashtbl.create 8

let gprepare (w : Omni_workloads.Workloads.Guest.t) : gprepared =
  match Hashtbl.find_opt gprepare_cache w.name with
  | Some g -> g
  | None ->
      let prog =
        match Omni_guest.Asm.assemble w.asm with
        | Ok p -> p
        | Error e -> fail "%s: %s" w.name (Omni_guest.Error.to_string e)
      in
      let o = Omni_guest.Interp.run ~fuel:2_000_000_000 prog in
      (match o.Omni_guest.Interp.outcome with
      | Omni_guest.Interp.Exited 0 -> ()
      | Omni_guest.Interp.Exited c ->
          fail "%s exited %d under the guest oracle" w.name c
      | Omni_guest.Interp.Faulted f ->
          fail "%s faulted under the guest oracle: %s" w.name
            (Omnivm.Fault.to_string f)
      | Omni_guest.Interp.Out_of_fuel -> fail "%s oracle out of fuel" w.name);
      let exe =
        match Omni_guest.Lift.lift_exe prog with
        | Ok e -> e
        | Error e -> fail "%s lift: %s" w.name (Omni_guest.Error.to_string e)
      in
      let g =
        {
          g_name = w.name;
          g_prog = prog;
          g_exe = exe;
          g_expected = o.Omni_guest.Interp.output;
          g_oracle_steps = o.Omni_guest.Interp.steps;
        }
      in
      Hashtbl.replace gprepare_cache w.name g;
      g

(* Wall-clock lift time (assemble excluded: bytes-in is the product's
   ingestion path), best-effort averaged over reps like [translation_speed]. *)
(* Best-of-batches: lifting one workload takes ~10us, where scheduler
   jitter swamps a single average. The minimum over several batches is
   the standard noise-robust statistic for a deterministic hot path —
   it is what the bench gate diffs, so it must be reproducible. *)
let glift_time (g : gprepared) : float =
  let reps = 50 and batches = 5 in
  let best = ref infinity in
  for _ = 1 to batches do
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (Omni_guest.Lift.lift_exe g.g_prog)
    done;
    let per = (Sys.time () -. t0) /. float_of_int reps in
    if per < !best then best := per
  done;
  !best

(* Run the lifted module and validate against the oracle's output. *)
let grun (g : gprepared) ~engine ?mode ?opts () : Api.run_result =
  let r = Api.run_exe ~engine ?mode ?opts ~fuel:2_000_000_000 g.g_exe in
  (match r.Api.outcome with
  | Machine.Exited 0 -> ()
  | Machine.Exited c -> fail "%s (lifted) exited %d" g.g_name c
  | Machine.Faulted f ->
      fail "%s (lifted) faulted: %s" g.g_name (Omnivm.Fault.to_string f)
  | Machine.Out_of_fuel -> fail "%s (lifted) out of fuel" g.g_name);
  if not (String.equal r.Api.output g.g_expected) then
    fail "%s (lifted) diverged from the guest oracle" g.g_name;
  r

let guest_front_end ~size =
  let ws = Omni_workloads.Workloads.Guest.all ~size in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Guest front-end: StackVM bytecode lifted to OmniVM\n\
     (every run below validated byte-for-byte against the guest oracle)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-12s %9s %12s %12s %10s\n" "program" "lift-us"
       "guest-steps" "omni-instrs" "expansion");
  List.iter
    (fun (w : Omni_workloads.Workloads.Guest.t) ->
      let g = gprepare w in
      let lift_s = glift_time g in
      let r = grun g ~engine:Api.Interp () in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %9.0f %12d %12d %9.1fx\n" g.g_name
           (1e6 *. lift_s) g.g_oracle_steps r.Api.instructions
           (float_of_int r.Api.instructions
           /. float_of_int (max 1 g.g_oracle_steps))))
    ws;
  Buffer.add_string buf
    "\nSFI overhead of the lifted modules (cycles relative to the same\n\
     translator without SFI):\n";
  Buffer.add_string buf (Printf.sprintf "%-12s" "program");
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "%9s" (Arch.name a)))
    all_archs;
  Buffer.add_char buf '\n';
  let totals = Array.make (List.length all_archs) 0.0 in
  List.iter
    (fun (w : Omni_workloads.Workloads.Guest.t) ->
      let g = gprepare w in
      Buffer.add_string buf (Printf.sprintf "%-12s" g.g_name);
      List.iteri
        (fun i arch ->
          let cycles config =
            let mode, opts = mode_and_opts arch config in
            (grun g ~engine:(Api.Target arch) ~mode ~opts ()).Api.cycles
          in
          let ratio =
            float_of_int (cycles Mobile_sfi)
            /. float_of_int (max 1 (cycles Mobile_nosfi))
          in
          totals.(i) <- totals.(i) +. ratio;
          Buffer.add_string buf (Printf.sprintf "%9.3f" ratio))
        all_archs;
      Buffer.add_char buf '\n')
    ws;
  Buffer.add_string buf (Printf.sprintf "%-12s" "average");
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%9.3f" (t /. float_of_int (List.length ws))))
    totals;
  Buffer.add_string buf "\n";
  Buffer.contents buf

(* --- the fast path: pre-decoded threaded interpreter ------------------

   Two measurements. First, steady-state wall-clock time per retired
   OmniVM instruction under the pre-decoded closure-threaded interpreter
   ({!Omnivm.Fastinterp}) against the baseline decode-as-you-go
   interpreter, over both workload families (MiniC-compiled and
   guest-lifted), outputs validated bit-for-bit. The one-time pre-decode
   (compile + fusion) is reported separately — the serving stack
   amortizes it through {!Omni_service.Store.predecoded}. Second, the
   SFI-overhead table gains a padding dimension: each translation-time
   pad mode ({!Omni_sfi.Policy.pad}) re-lays-out the masking sequences,
   and the table reports its simulated-cycle cost per arch. *)

type fast_cell = {
  fc_name : string;
  fc_family : string; (* "minic" | "guest" *)
  fc_instrs : int; (* source instructions retired *)
  fc_len : int; (* static program length *)
  fc_fused : int; (* fused pairs the peephole pass selected *)
  fc_predecode_s : float; (* one-time compile + fuse *)
  fc_interp_s : float; (* best-of-batches run wall clock *)
  fc_fast_s : float;
}

let fast_cache : (string, fast_cell list) Hashtbl.t = Hashtbl.create 4

let fastpath_measure ~size : fast_cell list =
  let module Exec = Omni_service.Exec in
  let skey =
    match size with Omni_workloads.Workloads.Test -> "test" | _ -> "ref"
  in
  match Hashtbl.find_opt fast_cache skey with
  | Some cs -> cs
  | None ->
      let fuel = 4_000_000_000 in
      let batches = 3 and reps = 2 in
      let cell ~family name (exe : Omnivm.Exe.t) expected : fast_cell =
        let text = exe.Omnivm.Exe.text in
        let program = Omnivm.Fastinterp.compile text in
        let predecode_s =
          (* lifting-style best-of-batches: pre-decode is ~microseconds *)
          let preps = 20 in
          let best = ref infinity in
          for _ = 1 to batches do
            let t0 = Sys.time () in
            for _ = 1 to preps do
              ignore (Omnivm.Fastinterp.compile text)
            done;
            let per = (Sys.time () -. t0) /. float_of_int preps in
            if per < !best then best := per
          done;
          !best
        in
        let timed run =
          (* a fresh image per rep (run state is consumed); images are
             loaded outside the timed region, runs inside *)
          let best = ref infinity and instrs = ref 0 in
          for _ = 1 to batches do
            let imgs = Array.init reps (fun _ -> Exec.load exe) in
            let t0 = Sys.time () in
            let rs = Array.map (fun img -> (run img : Exec.run_result)) imgs in
            let per = (Sys.time () -. t0) /. float_of_int reps in
            Array.iter
              (fun (r : Exec.run_result) ->
                (match r.Exec.outcome with
                | Machine.Exited 0 -> ()
                | _ -> fail "%s: fast-path bench run did not exit 0" name);
                if not (String.equal r.Exec.output expected) then
                  fail "%s: fast-path bench produced wrong output" name;
                instrs := r.Exec.instructions)
              rs;
            if per < !best then best := per
          done;
          (!best, !instrs)
        in
        let interp_s, instrs = timed (fun img -> Exec.run_interp ~fuel img) in
        let fast_s, fast_instrs =
          timed (fun img -> Exec.run_fast ~fuel ~program img)
        in
        if fast_instrs <> instrs then
          fail "%s: fast path retired %d instructions, interpreter %d" name
            fast_instrs instrs;
        {
          fc_name = name;
          fc_family = family;
          fc_instrs = instrs;
          fc_len = Omnivm.Fastinterp.length program;
          fc_fused = Omnivm.Fastinterp.fused program;
          fc_predecode_s = predecode_s;
          fc_interp_s = interp_s;
          fc_fast_s = fast_s;
        }
      in
      let minic =
        List.map
          (fun (w : Omni_workloads.Workloads.t) ->
            let p = prepare w in
            cell ~family:"minic" p.p_name p.p_exe p.p_expected)
          (workloads ~size)
      in
      let guest =
        List.map
          (fun (w : Omni_workloads.Workloads.Guest.t) ->
            let g = gprepare w in
            cell ~family:"guest" g.g_name g.g_exe g.g_expected)
          (Omni_workloads.Workloads.Guest.all ~size)
      in
      let cs = minic @ guest in
      Hashtbl.replace fast_cache skey cs;
      cs

(* Simulated cycles of one (workload, arch, pad) cell, validated and
   cached like [measure] — the padding dimension of the SFI tables. *)
let pad_run_cache : (string * string * string, int) Hashtbl.t =
  Hashtbl.create 64

let pad_cycles (w : Omni_workloads.Workloads.t) (arch : Arch.t)
    (pad : Omni_sfi.Policy.pad) : int =
  let pname = Omni_sfi.Policy.pad_name pad in
  let key = (w.name, Arch.name arch, pname) in
  match Hashtbl.find_opt pad_run_cache key with
  | Some c -> c
  | None ->
      let p = prepare w in
      let mode = Machine.Mobile (Omni_sfi.Policy.make ~pad ()) in
      let r =
        Api.run_exe ~engine:(Api.Target arch) ~mode
          ~opts:(Api.mobile_opts arch) ~fuel:4_000_000_000 p.p_exe
      in
      (match r.Api.outcome with
      | Machine.Exited 0 -> ()
      | _ ->
          fail "%s/%s/pad=%s did not exit 0" w.name (Arch.name arch) pname);
      if not (String.equal r.Api.output p.p_expected) then
        fail "%s/%s/pad=%s produced wrong output" w.name (Arch.name arch)
          pname;
      Hashtbl.replace pad_run_cache key r.Api.cycles;
      r.Api.cycles

let fastpath ~size =
  let cells = fastpath_measure ~size in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Fast path: pre-decoded threaded interpreter vs the baseline \
     interpreter\n\
     (wall-clock ns per retired OmniVM instruction; outputs validated \
     bit-for-bit;\npre-decode is the one-time compile+fusion cost the \
     service's decode cache amortizes)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-6s %10s %7s %12s %10s %10s %8s\n" "program"
       "family" "instrs" "fused%" "predecode-us" "interp-ns" "fast-ns"
       "speedup");
  let per_ns c s = 1e9 *. s /. float_of_int (max 1 c.fc_instrs) in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-6s %10d %6.1f%% %12.1f %10.2f %10.2f %7.2fx\n"
           c.fc_name c.fc_family c.fc_instrs
           (100.0 *. float_of_int c.fc_fused /. float_of_int (max 1 c.fc_len))
           (1e6 *. c.fc_predecode_s) (per_ns c c.fc_interp_s)
           (per_ns c c.fc_fast_s)
           (c.fc_interp_s /. Float.max 1e-12 c.fc_fast_s)))
    cells;
  List.iter
    (fun family ->
      let fs = List.filter (fun c -> c.fc_family = family) cells in
      if fs <> [] then begin
        let sum f = List.fold_left (fun a c -> a +. f c) 0.0 fs in
        Buffer.add_string buf
          (Printf.sprintf
             "%-12s %-6s %10s %7s %12s %10.2f %10.2f %7.2fx\n"
             ("avg/" ^ family) family "-" "-" "-"
             (1e9 *. sum (fun c -> c.fc_interp_s)
             /. sum (fun c -> float_of_int (max 1 c.fc_instrs)))
             (1e9 *. sum (fun c -> c.fc_fast_s)
             /. sum (fun c -> float_of_int (max 1 c.fc_instrs)))
             (sum (fun c -> c.fc_interp_s)
             /. Float.max 1e-12 (sum (fun c -> c.fc_fast_s))))
      end)
    [ "minic"; "guest" ];
  Buffer.add_char buf '\n';
  let ws = workloads ~size in
  Buffer.add_string buf
    "SFI overhead by padding mode: translated cycles relative to native \
     code (cc)\n(pad=none is the plain SFI column of Tables 1/3)\n\n";
  List.iter
    (fun arch ->
      Buffer.add_string buf
        (render_ratio_table
           ~title:(Printf.sprintf "  [%s]" (Arch.name arch))
           ~columns:
             (List.map Omni_sfi.Policy.pad_name Omni_sfi.Policy.all_pads)
           ~rows:
             (List.map (fun (w : Omni_workloads.Workloads.t) -> w.name) ws)
           ~cell:(fun r c ->
             let w =
               List.find
                 (fun (w : Omni_workloads.Workloads.t) -> w.name = r)
                 ws
             in
             let pad = Option.get (Omni_sfi.Policy.pad_of_string c) in
             Some
               (float_of_int (pad_cycles w arch pad)
               /. float_of_int (max 1 (measure w arch Native_cc).m_cycles))));
      Buffer.add_char buf '\n')
    all_archs;
  Buffer.contents buf

(* --- persistence: crash-safe store restart costs (PR 10) --------------

   One serving round (submit + translate on X86) is measured four ways:
   with no store attached (the baseline), cold with journaling on (the
   append overhead), reopened after a simulated kill -9 (dirty recovery:
   journal replay + full witness re-proof), and reopened after a graceful
   close (the clean-marker fast path). The warm serving round on the
   recovered service shows the payoff: zero translations, only
   witness re-checks. *)

type persist_cell = {
  pc_baseline_s : float; (* cold round, no store attached *)
  pc_cold_s : float; (* cold round, journaling every admit *)
  pc_dirty_restart_s : float; (* reopen after kill -9 (no marker) *)
  pc_clean_restart_s : float; (* reopen after graceful close *)
  pc_warm_round_s : float; (* serving round on the recovered service *)
  pc_records : int; (* journal records on disk *)
  pc_seg_bytes : int;
  pc_recovered : int; (* records re-admitted on the dirty restart *)
  pc_cert_checks : int; (* witness checks during the warm round *)
  pc_full_verifies : int; (* full verifies there — stays 0 *)
  pc_translations : int; (* translations there — stays 0 *)
}

let persist_measure ~size : persist_cell =
  let module Svc = Omni_service.Service in
  let module SC = Omni_service.Counters in
  let module Exec = Omni_service.Exec in
  let ws = workloads ~size in
  (* The round is submit + translate + a fuel-capped run: execution cost
     is identical cold and warm and is not what this section measures —
     capping it keeps the admission path (translation vs witness
     re-check) visible instead of drowned in simulated instructions. *)
  let fuel = 5_000 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omni-bench-persist-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  let round svc =
    List.iter
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        let h = Svc.submit svc (Omnivm.Wire.encode p.p_exe) in
        ignore (Svc.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h))
      ws
  in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (Sys.time () -. t0, r)
  in
  let persisted () =
    { Svc.default_config with Svc.persist = Some (Omni_persist.Io.real ~dir) }
  in
  (* untimed warm-up: fill the prepare cache and pay one-time lazy
     initialization so the first timed round isn't charged for it *)
  round (Svc.create ());
  let pc_baseline_s =
    let best = ref infinity in
    for _ = 1 to 3 do
      let s, () = time (fun () -> round (Svc.create ())) in
      if s < !best then best := s
    done;
    !best
  in
  (* cold requires an empty store, so each iteration wipes the directory;
     the last iteration's (never-closed) store is what the restarts below
     recover *)
  let pc_cold_s =
    let best = ref infinity in
    for _ = 1 to 3 do
      cleanup ();
      let svc = Svc.of_config (persisted ()) in
      let s, () = time (fun () -> round svc) in
      if s < !best then best := s
    done;
    !best
  in
  (* kill -9: drop the service without close — no clean marker. Opening
     consumes the marker (a store is dirty until the next close), so the
     dirty restart repeats without re-killing and can be taken
     best-of-three like the other scheduler-sensitive paths. *)
  let pc_dirty_restart_s, svc_warm =
    let best = ref infinity and last = ref None in
    for _ = 1 to 3 do
      let s, svc = time (fun () -> Svc.of_config (persisted ())) in
      if s < !best then best := s;
      last := Some svc
    done;
    (!best, Option.get !last)
  in
  let recovered =
    match Svc.recovery svc_warm with
    | Some r ->
        List.length r.Omni_persist.Store.r_modules
        + List.length r.Omni_persist.Store.r_translations
    | None -> 0
  in
  (* the warm round is idempotent (submits dedupe, the cache hits), so
     it too repeats; the counters are captured after the first round *)
  let first_warm_s, () = time (fun () -> round svc_warm) in
  let stats = Svc.stats svc_warm in
  let pc_warm_round_s =
    let best = ref first_warm_s in
    for _ = 1 to 2 do
      let s, () = time (fun () -> round svc_warm) in
      if s < !best then best := s
    done;
    !best
  in
  (* graceful shutdown commits the marker: the next open is the fast path *)
  Svc.close svc_warm;
  (* each clean open consumes the marker and each close rewrites it, so
     this too repeats *)
  let pc_clean_restart_s =
    let best = ref infinity in
    for _ = 1 to 3 do
      let s, svc = time (fun () -> Svc.of_config (persisted ())) in
      if s < !best then best := s;
      Svc.close svc
    done;
    !best
  in
  let st = Omni_persist.Store.stat (Omni_persist.Io.real ~dir) in
  {
    pc_baseline_s;
    pc_cold_s;
    pc_dirty_restart_s;
    pc_clean_restart_s;
    pc_warm_round_s;
    pc_records = st.Omni_persist.Store.st_records;
    pc_seg_bytes = st.Omni_persist.Store.st_seg_bytes;
    pc_recovered = recovered;
    pc_cert_checks = stats.SC.s_cert_checks;
    pc_full_verifies = stats.SC.s_cert_full_verify;
    pc_translations = stats.SC.s_translations;
  }

let persistence ~size =
  let c = persist_measure ~size in
  let ms s = 1e3 *. s in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "Persistence: crash-safe store restart costs (X86, submit+translate \
     round)\n\n";
  Printf.bprintf b "  cold round, no store attached   %8.2f ms\n"
    (ms c.pc_baseline_s);
  Printf.bprintf b
    "  cold round, journaling on       %8.2f ms  (journal overhead %+.2f \
     ms)\n"
    (ms c.pc_cold_s)
    (ms (c.pc_cold_s -. c.pc_baseline_s));
  Printf.bprintf b
    "  dirty restart (kill -9)         %8.2f ms  (replay + witness \
     re-proof, %d records)\n"
    (ms c.pc_dirty_restart_s) c.pc_recovered;
  Printf.bprintf b "  clean restart (marker)          %8.2f ms\n"
    (ms c.pc_clean_restart_s);
  Printf.bprintf b
    "  warm round after recovery       %8.2f ms  (%.1fx vs cold; %d \
     witness checks, %d full verifies, %d translations)\n"
    (ms c.pc_warm_round_s)
    (c.pc_cold_s /. Float.max 1e-9 c.pc_warm_round_s)
    c.pc_cert_checks c.pc_full_verifies c.pc_translations;
  Printf.bprintf b "  store: %d records, %d segment bytes\n" c.pc_records
    c.pc_seg_bytes;
  Buffer.add_string b
    (if c.pc_warm_round_s < c.pc_cold_s && c.pc_translations = 0 then
       "  => recovered translations served warm: no re-translation after \
        restart\n"
     else "  => WARNING: warm round did not beat cold\n");
  Buffer.contents b

(* --- machine-readable benchmark snapshot (BENCH_10.json) --------------

   A compact re-measurement of the hot paths of every subsystem bench,
   emitted as stable JSON so successive runs can be diffed ([make
   bench-gate]). All times are integer microseconds of CPU time
   ([Sys.time]), which keeps the file parseable by the repo's small
   integer-only JSON readers and the numbers stable under scheduler
   noise. The [hot_paths] object is the gate's contract: flat
   name -> microseconds, nothing else promised to stay. *)

let bench_snapshot ~size : string =
  let module Svc = Omni_service.Service in
  let module SC = Omni_service.Counters in
  let module Exec = Omni_service.Exec in
  let module Net = Omni_net in
  let us s = int_of_float (1e6 *. s) in
  let fuel = 4_000_000_000 in
  let ws = workloads ~size in
  let hot : (string * int) list ref = ref [] in
  let hot_add name v = hot := (name, v) :: !hot in
  (* phases: serving path under a Null tracer, per-phase histograms *)
  let m = Omni_obs.Metrics.create () in
  let phase_section =
    let tracer = Omni_obs.Trace.make ~metrics:m Omni_obs.Trace.Null in
    Omni_obs.Trace.with_current tracer @@ fun () ->
    let svc = Svc.create ~metrics:m () in
    List.iter
      (fun (w : Omni_workloads.Workloads.t) ->
        let p = prepare w in
        let h = Svc.submit svc (Omnivm.Wire.encode p.p_exe) in
        ignore (Svc.instantiate ~fuel svc h);
        List.iter
          (fun arch ->
            ignore (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc h))
          all_archs)
      ws;
    let snap = Omni_obs.Metrics.snapshot m in
    List.filter_map
      (fun (name, (hs : Omni_obs.Metrics.hist_snapshot)) ->
        let n = String.length name in
        if n > 6 && String.sub name 0 6 = "phase." then begin
          let phase = String.sub name 6 (n - 6) in
          let mean =
            hs.Omni_obs.Metrics.hs_sum
            /. float_of_int (max 1 hs.Omni_obs.Metrics.hs_count)
          in
          (match phase with
          | "translate" | "verify" | "run" ->
              hot_add (Printf.sprintf "phase.%s.mean" phase) (us mean)
          | _ -> ());
          Some
            (Printf.sprintf
               "    \"%s\": {\"count\": %d, \"total_us\": %d, \"mean_us\": %d}"
               phase hs.Omni_obs.Metrics.hs_count
               (us hs.Omni_obs.Metrics.hs_sum)
               (us mean))
        end
        else None)
      snap.Omni_obs.Metrics.histograms
  in
  (* service: cold vs warm admission per arch, via the serving counters *)
  let service_section =
    let svc = Svc.create () in
    let handles =
      List.map
        (fun (w : Omni_workloads.Workloads.t) ->
          let p = prepare w in
          Svc.submit svc (Omnivm.Wire.encode p.p_exe))
        ws
    in
    let load_all arch =
      List.iter
        (fun h ->
          ignore (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc h))
        handles
    in
    List.map
      (fun arch ->
        let cold0 = (Svc.stats svc).SC.s_cold_translate_s in
        load_all arch;
        let cold = (Svc.stats svc).SC.s_cold_translate_s -. cold0 in
        (* the warm round is ~100 us of re-verification: best of three so
           the gate judges the path, not the scheduler *)
        let warm = ref infinity in
        for _ = 1 to 3 do
          let warm0 = (Svc.stats svc).SC.s_warm_admit_s in
          load_all arch;
          let w = (Svc.stats svc).SC.s_warm_admit_s -. warm0 in
          if w < !warm then warm := w
        done;
        let warm = !warm in
        hot_add (Printf.sprintf "service.warm.%s" (Arch.name arch)) (us warm);
        Printf.sprintf "    \"%s\": {\"cold_us\": %d, \"warm_us\": %d}"
          (Arch.name arch) (us cold) (us warm))
      all_archs
  in
  (* remote: warm round trips over the loopback pair vs in-process *)
  let remote_section =
    let svc_r = Svc.create () in
    let server = Net.Server.create svc_r in
    let client = Net.Client.loopback server in
    let svc_l = Svc.create () in
    let prepared =
      List.map
        (fun (w : Omni_workloads.Workloads.t) ->
          Omnivm.Wire.encode (prepare w).p_exe)
        ws
    in
    let rh = List.map (Net.Client.submit client) prepared in
    let lh = List.map (Svc.submit svc_l) prepared in
    let time f =
      let t0 = Sys.time () in
      f ();
      Sys.time () -. t0
    in
    List.map
      (fun arch ->
        let remote_round () =
          List.iter
            (fun h ->
              ignore (Net.Client.run ~engine:(Exec.Target arch) ~fuel client h))
            rh
        in
        let local_round () =
          List.iter
            (fun h ->
              ignore (Svc.instantiate ~engine:(Exec.Target arch) ~fuel svc_l h))
            lh
        in
        ignore (time remote_round);
        ignore (time local_round);
        let warm_r = time remote_round in
        let warm_l = time local_round in
        hot_add (Printf.sprintf "remote.warm.%s" (Arch.name arch)) (us warm_r);
        Printf.sprintf
          "    \"%s\": {\"warm_remote_us\": %d, \"warm_local_us\": %d}"
          (Arch.name arch) (us warm_r) (us warm_l))
      all_archs
  in
  (* resilience: one loopback round per fault rate, retrying client *)
  let resilience_section =
    List.map
      (fun rate ->
        let svc = Svc.create () in
        let server = Net.Server.create svc in
        let retry = { Net.Retry.default with max_attempts = 12 } in
        let env = Net.Retry.manual_env () in
        let fault =
          if rate > 0. then Some (Net.Fault.arm (Net.Fault.seeded ~seed:42 ~rate ()))
          else None
        in
        let client = Net.Client.loopback ~retry ~env ?fault server in
        let handles = List.map
            (fun (w : Omni_workloads.Workloads.t) ->
              Net.Client.submit client (Omnivm.Wire.encode (prepare w).p_exe))
            ws
        in
        let t0 = Sys.time () in
        List.iter
          (fun h ->
            ignore
              (Net.Client.run ~engine:(Exec.Target Arch.X86) ~fuel client h))
          handles;
        let round = Sys.time () -. t0 in
        let key = Printf.sprintf "rate_%g" rate in
        Printf.sprintf "    \"%s\": {\"round_us\": %d}" key (us round))
      [ 0.0; 0.05 ]
  in
  (* isolation: watchdog poll overhead at one representative K *)
  let isolation_section =
    let module Supervise = Omni_service.Supervise in
    let prepared = List.map prepare ws in
    let round poll_every () =
      List.iter
        (fun (p : prepared) ->
          let img = Exec.load p.p_exe in
          let watchdog =
            Option.map
              (fun k -> Supervise.watchdog ~poll_every:k ~budget_s:1e9 ())
              poll_every
          in
          ignore (Exec.run_interp ~fuel ?watchdog img))
        prepared
    in
    let time f =
      let t0 = Sys.time () in
      f ();
      Sys.time () -. t0
    in
    ignore (time (round None));
    let base = time (round None) in
    let polled = time (round (Some 16_384)) in
    hot_add "isolation.poll_16384" (us polled);
    [ Printf.sprintf "    \"off\": {\"round_us\": %d}" (us base);
      Printf.sprintf "    \"poll_16384\": {\"round_us\": %d}" (us polled) ]
  in
  (* cert: the tentpole numbers — full verify vs witness check *)
  let cert_section =
    List.map
      (fun c ->
        hot_add
          (Printf.sprintf "cert.full_verify.%s.%s" c.cc_arch c.cc_policy)
          (us c.cc_full_s);
        hot_add
          (Printf.sprintf "cert.witness_check.%s.%s" c.cc_arch c.cc_policy)
          (us c.cc_check_s);
        Printf.sprintf
          "    \"%s/%s\": {\"produce_us\": %d, \"full_verify_us\": %d, \
           \"witness_check_us\": %d, \"speedup_x100\": %d, \"bytes\": %d}"
          c.cc_arch c.cc_policy (us c.cc_produce_s) (us c.cc_full_s)
          (us c.cc_check_s)
          (int_of_float (100. *. c.cc_full_s /. Float.max 1e-9 c.cc_check_s))
          c.cc_bytes)
      (cert_measure ~size)
  in
  ignore (cert_validate ~size);
  (* guest front-end: lift time per workload (the gated hot path), plus
     oracle-vs-lifted sizes for the record *)
  let guest_section =
    List.map
      (fun (w : Omni_workloads.Workloads.Guest.t) ->
        let g = gprepare w in
        let lift_s = glift_time g in
        let r = grun g ~engine:Api.Interp () in
        hot_add (Printf.sprintf "guest.lift.%s" g.g_name) (us lift_s);
        Printf.sprintf
          "    \"%s\": {\"lift_us\": %d, \"guest_steps\": %d, \
           \"omni_instrs\": %d}"
          g.g_name (us lift_s) g.g_oracle_steps r.Api.instructions)
      (Omni_workloads.Workloads.Guest.all ~size)
  in
  (* concurrency: seeded concurrent load on one shared server; the gate
     metric is the one-domain round's CPU time — the multi-domain walls
     depend on the host's core count, so they are reported, not gated *)
  let concurrency_section =
    let c = concurrency_measure ~size in
    hot_add "concurrency.round_us" (us c.cy_serial_cpu_s);
    List.map
      (fun r ->
        Printf.sprintf
          "    \"domains_%d\": {\"wall_us\": %d, \"throughput_rps\": %d, \
           \"p50_us\": %d, \"p95_us\": %d, \"p99_us\": %d}"
          r.cy_domains (us r.cy_wall_s)
          (int_of_float r.cy_rps)
          r.cy_p50_us r.cy_p95_us r.cy_p99_us)
      c.cy_rows
    @ [
        Printf.sprintf
          "    \"load\": {\"requests\": %d, \"configs\": %d, \
           \"host_cores\": %d}"
          c.cy_requests c.cy_configs c.cy_cores;
      ]
  in
  (* fast path: steady-state fast vs baseline interpreter per workload
     (both families) plus the pad × arch cycle ratios; the gate metric is
     the whole-suite round per engine *)
  let fastpath_section =
    let cells = fastpath_measure ~size in
    let interp_round =
      List.fold_left (fun a c -> a +. c.fc_interp_s) 0.0 cells
    in
    let fast_round = List.fold_left (fun a c -> a +. c.fc_fast_s) 0.0 cells in
    hot_add "fastpath.round.interp" (us interp_round);
    hot_add "fastpath.round.fast" (us fast_round);
    let per_cell =
      List.map
        (fun c ->
          Printf.sprintf
            "    \"%s\": {\"instrs\": %d, \"fused\": %d, \
             \"predecode_us\": %d, \"interp_us\": %d, \"fast_us\": %d, \
             \"speedup_x100\": %d}"
            c.fc_name c.fc_instrs c.fc_fused
            (us c.fc_predecode_s) (us c.fc_interp_s) (us c.fc_fast_s)
            (int_of_float
               (100. *. c.fc_interp_s /. Float.max 1e-9 c.fc_fast_s)))
        cells
    in
    let pad_rows =
      List.concat_map
        (fun arch ->
          List.map
            (fun pad ->
              let rel w =
                float_of_int (pad_cycles w arch pad)
                /. float_of_int (max 1 (measure w arch Native_cc).m_cycles)
              in
              let avg =
                List.fold_left (fun a w -> a +. rel w) 0.0 ws
                /. float_of_int (List.length ws)
              in
              Printf.sprintf "    \"pad/%s/%s\": {\"rel_cc_x100\": %d}"
                (Arch.name arch)
                (Omni_sfi.Policy.pad_name pad)
                (int_of_float (100. *. avg)))
            Omni_sfi.Policy.all_pads)
        all_archs
    in
    per_cell @ pad_rows
  in
  (* persistence: restart costs of the crash-safe store. Only the
     CPU-dominated paths are gated (journaled cold round, warm round);
     the restart timings are disk-bound — a few ms of fsync and page
     cache — and jitter past the gate's 20% threshold on a shared host
     even under a best-of-3 minimum, so they are reported in the
     "restart" row below but not gated. *)
  let persist_section =
    let c = persist_measure ~size in
    hot_add "persist.cold_us" (us c.pc_cold_s);
    hot_add "persist.warm_round_us" (us c.pc_warm_round_s);
    [ Printf.sprintf
        "    \"cold\": {\"baseline_us\": %d, \"journaled_us\": %d, \
         \"append_overhead_us\": %d}"
        (us c.pc_baseline_s) (us c.pc_cold_s)
        (max 0 (us (c.pc_cold_s -. c.pc_baseline_s)));
      Printf.sprintf
        "    \"restart\": {\"dirty_us\": %d, \"clean_us\": %d, \
         \"warm_round_us\": %d, \"recovered\": %d}"
        (us c.pc_dirty_restart_s) (us c.pc_clean_restart_s)
        (us c.pc_warm_round_s) c.pc_recovered;
      Printf.sprintf
        "    \"store\": {\"records\": %d, \"segment_bytes\": %d, \
         \"cert_checks\": %d, \"full_verifies\": %d, \"translations\": %d}"
        c.pc_records c.pc_seg_bytes c.pc_cert_checks c.pc_full_verifies
        c.pc_translations ]
  in
  let obj name lines =
    Printf.sprintf "  \"%s\": {\n%s\n  }" name (String.concat ",\n" lines)
  in
  let hot_lines =
    List.rev_map
      (fun (name, v) -> Printf.sprintf "    \"%s\": %d" name v)
      !hot
  in
  String.concat ""
    [ "{\n";
      Printf.sprintf "  \"schema\": \"omni-bench/1\",\n";
      Printf.sprintf "  \"size\": \"%s\",\n"
        (match size with Omni_workloads.Workloads.Test -> "test" | _ -> "ref");
      obj "phases" phase_section; ",\n";
      obj "service" service_section; ",\n";
      obj "remote" remote_section; ",\n";
      obj "resilience" resilience_section; ",\n";
      obj "isolation" isolation_section; ",\n";
      obj "cert" cert_section; ",\n";
      obj "guest" guest_section; ",\n";
      obj "concurrency" concurrency_section; ",\n";
      obj "fastpath" fastpath_section; ",\n";
      obj "persistence" persist_section; ",\n";
      obj "hot_paths" hot_lines; "\n}\n" ]

let all_tables ~size =
  String.concat "\n"
    [ table1 ~size; table2 ~size; table3 ~size; table4 ~size; table5 ~size;
      table6 ~size; figure1 ~size; figure2 () ]
