let hot_paths_of_json (text : string) : (string * int) list =
  match String.index_opt text '{' with
  | None -> []
  | Some _ -> (
      let key = "\"hot_paths\"" in
      let rec find i =
        if i + String.length key > String.length text then None
        else if String.sub text i (String.length key) = key then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> []
      | Some i -> (
          match String.index_from_opt text i '{' with
          | None -> []
          | Some open_brace -> (
              let start = open_brace + 1 in
              match String.index_from_opt text start '}' with
              | None -> []
              | Some stop ->
                  let body = String.sub text start (stop - start) in
                  String.split_on_char ',' body
                  |> List.filter_map (fun line ->
                         match String.split_on_char ':' line with
                         | [ name; value ] -> (
                             let name = String.trim name in
                             let name =
                               if String.length name >= 2 && name.[0] = '"'
                               then String.sub name 1 (String.length name - 2)
                               else name
                             in
                             match int_of_string_opt (String.trim value) with
                             | Some v -> Some (name, v)
                             | None -> None)
                         | _ -> None))))

type diff = {
  d_regressions : (string * int * int) list;
  d_new : string list;
  d_dropped : string list;
  d_compared : int;
}

let default_threshold = 1.20
let default_min_delta = 10

let diff ?(threshold = default_threshold) ?(min_delta = default_min_delta)
    ~baseline ~fresh () =
  let d_new =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name baseline then None else Some name)
      fresh
  in
  let d_dropped =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name fresh then None else Some name)
      baseline
  in
  let compared = ref 0 in
  let d_regressions =
    List.filter_map
      (fun (name, now) ->
        match List.assoc_opt name baseline with
        | None -> None
        | Some before ->
            incr compared;
            if
              before > 0
              && float_of_int now > threshold *. float_of_int before
              && now - before > min_delta
            then Some (name, before, now)
            else None)
      fresh
  in
  { d_regressions; d_new; d_dropped; d_compared = !compared }

let merge_min prev fresh =
  List.map
    (fun (name, v) ->
      match List.assoc_opt name prev with
      | Some v' -> (name, min v v')
      | None -> (name, v))
    fresh

let skip_summary d =
  if d.d_new = [] && d.d_dropped = [] then None
  else
    let clause label = function
      | [] -> []
      | keys ->
          [ Printf.sprintf "%d %s (%s)" (List.length keys) label
              (String.concat ", " keys) ]
    in
    Some
      (Printf.sprintf "bench-gate: skipped %s — new keys gate next run"
         (String.concat " and "
            (clause "new" d.d_new @ clause "dropped" d.d_dropped)))

let render_regression (name, before, now) =
  Printf.sprintf "bench-gate: REGRESSION %s: %dus -> %dus (%+.0f%%)" name
    before now
    (100. *. (float_of_int now /. float_of_int before -. 1.))
