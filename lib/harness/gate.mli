(** The benchmark regression gate, as a pure library.

    [make bench-gate] re-measures every subsystem's hot paths and diffs
    the fresh snapshot against the previous one. This module holds the
    logic the gate shares with its tests: extracting the flat
    [hot_paths] object from a snapshot, classifying every key as
    regressed / new / dropped, and summarizing the skipped keys in one
    stderr line. The binary in [bench/main.ml] only does I/O. *)

val hot_paths_of_json : string -> (string * int) list
(** Extract the flat ["name": int] pairs of the ["hot_paths"] object.
    The writer is {!Experiments.bench_snapshot} and the schema is
    stable, so a scanner suffices — no JSON library in the tree.
    Malformed input yields [[]], never an exception. *)

(** Outcome of diffing a fresh snapshot against a baseline. *)
type diff = {
  d_regressions : (string * int * int) list;
      (** [(name, before_us, now_us)] for every gated key slower than
          [threshold * before]; order follows the fresh snapshot *)
  d_new : string list;
      (** fresh keys with no baseline — skipped this run, gated next *)
  d_dropped : string list;
      (** baseline keys missing from the fresh snapshot — skipped *)
  d_compared : int;  (** keys present (and gated) in both snapshots *)
}

val default_threshold : float
(** 1.20: a hot path may be up to 20% slower before the gate fails. *)

val default_min_delta : int
(** 10 (µs): the absolute slack below which a relative regression is
    noise — 20% of a 30µs path is 6µs, under the timer's effective
    granularity on a shared host. *)

val diff :
  ?threshold:float ->
  ?min_delta:int ->
  baseline:(string * int) list ->
  fresh:(string * int) list ->
  unit ->
  diff
(** Classify every key of both snapshots. A key regresses when its
    baseline value is positive, [now > threshold *. before]
    (strictly: landing exactly on the threshold passes), and the
    absolute slowdown exceeds [min_delta] — so a few-µs wobble on a
    tiny path never trips the gate. Keys with a zero or negative
    baseline are compared but can never regress — sub-microsecond
    paths round to 0 and would otherwise trip on noise. *)

val merge_min : (string * int) list -> (string * int) list -> (string * int) list
(** [merge_min prev fresh] is [fresh] with every key that also appears
    in [prev] replaced by the smaller of the two samples (key order and
    the key *set* are [fresh]'s). The minimum is the stable estimator
    for timing under interference: re-measuring a regressed run and
    gating on the per-key minimum absorbs one-off noise spikes while a
    genuine slowdown survives every re-measurement. *)

val skip_summary : diff -> string option
(** One stderr line naming the keys the gate skipped (new and dropped),
    or [None] when nothing was skipped — a silently-shrinking gate is
    visible in CI logs without failing the run, and without drowning
    them in one line per key. *)

val render_regression : string * int * int -> string
(** ["bench-gate: REGRESSION name: 10us -> 15us (+50%)"]. *)
