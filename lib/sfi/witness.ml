(* The vocabulary of per-instruction safety obligations.

   An obligation is the producer's claim that instruction [ox] of a
   translated program is safe for a specific, checkable reason. The claims
   are payload-free: every fact they assert (displacement bounds, mask and
   base registers or immediates, lui constants) is re-read from the
   instruction itself at check time, so a witness cannot smuggle in facts
   the code does not exhibit. Instructions carrying no obligation must be
   shown harmless by the checker's own (cheap, shallow) scan.

   The kinds cover both register-constant sandboxing (the RISC targets:
   dedicated registers and reserved mask/base registers) and
   immediate-mask sandboxing (x86). Kinds that only exist on one family
   simply never appear in the other family's witnesses. *)

type kind =
  | Mask_data  (* and <ded|eax>, addr, data-mask : enters Masked(data) *)
  | Box_data  (* or <ded|eax>, same, data-base : Masked -> Boxed(data) *)
  | Mask_code
  | Box_code
  | Store_sandboxed  (* store through a Boxed(data) register, small disp *)
  | Store_indexed  (* ppc: store indexed off the reserved data base, Masked *)
  | Store_sp  (* sp-relative store within the guard zone *)
  | Store_abs  (* absolute store to a constant in-segment address *)
  | Store_gp  (* store through the reserved global pointer *)
  | Lui_const  (* lui scratch, k : scratch now holds the known constant k *)
  | Store_lui  (* store via the scratch constant, landing in-segment *)
  | Jump_sandboxed  (* indirect branch through a Boxed(code) register *)
  | Sp_adjust  (* sp := sp +/- small constant *)
  | Sp_resandboxed  (* arbitrary sp write immediately re-sandboxed *)

type obligation = { ox : int; kind : kind }

let kind_code = function
  | Mask_data -> 0
  | Box_data -> 1
  | Mask_code -> 2
  | Box_code -> 3
  | Store_sandboxed -> 4
  | Store_indexed -> 5
  | Store_sp -> 6
  | Store_abs -> 7
  | Store_gp -> 8
  | Lui_const -> 9
  | Store_lui -> 10
  | Jump_sandboxed -> 11
  | Sp_adjust -> 12
  | Sp_resandboxed -> 13

let kind_of_code = function
  | 0 -> Some Mask_data
  | 1 -> Some Box_data
  | 2 -> Some Mask_code
  | 3 -> Some Box_code
  | 4 -> Some Store_sandboxed
  | 5 -> Some Store_indexed
  | 6 -> Some Store_sp
  | 7 -> Some Store_abs
  | 8 -> Some Store_gp
  | 9 -> Some Lui_const
  | 10 -> Some Store_lui
  | 11 -> Some Jump_sandboxed
  | 12 -> Some Sp_adjust
  | 13 -> Some Sp_resandboxed
  | _ -> None

let kind_name = function
  | Mask_data -> "mask-data"
  | Box_data -> "box-data"
  | Mask_code -> "mask-code"
  | Box_code -> "box-code"
  | Store_sandboxed -> "store-sandboxed"
  | Store_indexed -> "store-indexed"
  | Store_sp -> "store-sp"
  | Store_abs -> "store-abs"
  | Store_gp -> "store-gp"
  | Lui_const -> "lui-const"
  | Store_lui -> "store-lui"
  | Jump_sandboxed -> "jump-sandboxed"
  | Sp_adjust -> "sp-adjust"
  | Sp_resandboxed -> "sp-resandboxed"

let all_kinds =
  [ Mask_data; Box_data; Mask_code; Box_code; Store_sandboxed; Store_indexed;
    Store_sp; Store_abs; Store_gp; Lui_const; Store_lui; Jump_sandboxed;
    Sp_adjust; Sp_resandboxed ]

let equal_obligation (a : obligation) (b : obligation) =
  a.ox = b.ox && a.kind = b.kind
