(** Static SFI verifier over an abstract view of translated native code.

    Each target provides a [summarize] function mapping its instruction
    stream to the events below (see {!Omni_targets.Risc_verify} and
    {!Omni_targets.X86_verify}); the verifier then checks the Wahbe-style
    invariant: every unsafe store and indirect branch goes through a
    properly sandboxed dedicated register, stack-pointer discipline is
    maintained, and all displacements stay within the segment guard zone.

    The check is a linear scan — per-instruction, not per-path — which is
    what makes load-time verification cheap.

    The same scan is the witness producer for proof-carrying translation:
    {!certify} returns the accepted stream's obligations (one per event
    that attests a positive safety fact), in instruction order. *)

type event =
  | Sandbox_data_mask
      (** dedicated register masked for the data segment (enters Masked) *)
  | Sandbox_data_box
      (** dedicated register boxed with the data base (Masked -> Boxed) *)
  | Sandbox_code_mask
  | Sandbox_code_box
  | Dedicated_clobber of string
      (** dedicated register written in a way that breaks the invariant *)
  | Store_via_dedicated of { disp : int }
  | Store_indexed
      (** ppc: store indexed off the reserved data-base register with a
          Masked(data) offset register *)
  | Store_via_sp of { disp : int }
  | Store_abs  (** absolute store to a constant in-segment address *)
  | Store_gp  (** store through the reserved global pointer *)
  | Lui_const  (** translator scratch register := known constant *)
  | Store_via_lui  (** store via the scratch constant, landing in-segment *)
  | Store_unsafe of string
  | Jump_via_dedicated
  | Jump_unsafe of string
  | Sp_adjust_const of int
  | Sp_resandboxed
      (** arbitrary sp write that the following instruction(s) immediately
          re-sandbox — the one blessed exception to the sp invariant *)
  | Sp_clobber of string
  | Neutral  (** no bearing on the SFI invariant *)

type failure = { index : int; reason : string }

val verify : ?max_disp:int -> event array -> (unit, failure) result
(** [max_disp] is the guard-zone bound displacements are checked against
    (default {!Policy.safe_sp_disp}); pass {!Policy.guard_zone} of the
    translation policy when verifying code produced under [Pad_guard8]. *)

val certify :
  ?max_disp:int -> event array -> (Witness.obligation array, failure) result
(** Like {!verify}, but on acceptance returns the per-instruction safety
    obligations the stream established, in strictly increasing
    instruction order (at most one per instruction). [certify] accepts
    exactly the streams [verify] accepts. *)
