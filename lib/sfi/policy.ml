(* Software fault isolation policy (Wahbe et al., SOSP'93; paper section 1).

   A mobile module owns a code segment and a data segment, each a
   power-of-two-sized region whose base is aligned to its size. Translators
   enforce, at load time, that

   - every unsafe store goes through a dedicated register whose value has
     been forced into the data segment:  dr := (addr & mask) | base
   - every indirect branch goes through a dedicated register forced into
     the code segment the same way.

   [Sandbox] is the classic forcing scheme the paper measures; [Guard]
   checks and raises the OmniVM access-violation exception instead (the
   virtual exception model); [Off] emits no protection (trusted modules /
   the native baselines). *)

type mode = Off | Sandbox | Guard

(* Layout variants for the masking sequences, per "The Effect of
   Instruction Padding on SFI Overhead": the sandboxing and/or pair can be
   padded or aligned to play nicer with the target's issue width, and the
   guard zone around the stack pointer can be widened so fewer sp-relative
   accesses need masking at all.

   - [Pad_none]   the seed's bare and/or pair;
   - [Pad_nop]    one nop after each mask/box pair (models separating the
                  sandboxing sequence from the dependent memory op);
   - [Pad_align]  nops are inserted so the protected memory op lands on an
                  even instruction slot within its translation chunk
                  (models issue-alignment padding);
   - [Pad_guard8] no extra nops, but an 8 KiB guard zone (double the
                  default) so displacements below 8192 skip masking.

   The re-sandboxing triple for arbitrary sp writes is never padded: the
   verifiers recognize it by strict adjacency. *)
type pad = Pad_none | Pad_nop | Pad_align | Pad_guard8

type t = {
  mode : mode;
  data_base : int;
  data_mask : int; (* size - 1 *)
  code_base : int;
  code_mask : int;
  protect_reads : bool;
      (* also check loads: the read-protection capability the paper cites
         from Wahbe et al. but did not incorporate (section 1). Off in the
         measured configuration. *)
  pad : pad;
}

let make ?(mode = Sandbox) ?(protect_reads = false) ?(pad = Pad_none) () =
  {
    mode;
    data_base = Omnivm.Layout.data_base;
    data_mask = Omnivm.Layout.data_mask;
    code_base = Omnivm.Layout.code_base;
    code_mask = Omnivm.Layout.code_mask;
    protect_reads;
    pad;
  }

let off = make ~mode:Off ()

(* The value an address is forced to by the data-segment sandboxing
   sequence. *)
let sandbox_data t addr = addr land t.data_mask lor t.data_base
let sandbox_code t addr = addr land t.code_mask lor t.code_base

let in_data t addr = addr land lnot t.data_mask = t.data_base
let in_code t addr = addr land lnot t.code_mask = t.code_base

(* The stack pointer is treated as a safe register: translators keep the
   invariant that sp stays inside the data segment (it is only modified by
   small constant increments, re-sandboxed when set from an arbitrary
   value), so sp-relative accesses with small displacements need no check.
   This is the standard SFI optimization for stack traffic and matches the
   overhead profile the paper reports. *)
let safe_sp_disp = 4096

(* The effective guard-zone size for a padding mode: displacements with
   absolute value below this bound need no masking. [Pad_guard8] doubles
   the zone; everything else uses the seed's [safe_sp_disp]. *)
let guard_zone_of_pad = function
  | Pad_guard8 -> 8192
  | Pad_none | Pad_nop | Pad_align -> safe_sp_disp

let guard_zone t = guard_zone_of_pad t.pad

let all_pads = [ Pad_none; Pad_nop; Pad_align; Pad_guard8 ]

let pad_name = function
  | Pad_none -> "none"
  | Pad_nop -> "nop"
  | Pad_align -> "align"
  | Pad_guard8 -> "guard8"

let pad_of_string = function
  | "none" -> Some Pad_none
  | "nop" -> Some Pad_nop
  | "align" -> Some Pad_align
  | "guard8" -> Some Pad_guard8
  | _ -> None

(* Stable 2-bit encoding, used by certificates and the wire protocol. *)
let pad_code = function
  | Pad_none -> 0
  | Pad_nop -> 1
  | Pad_align -> 2
  | Pad_guard8 -> 3

let pad_of_code = function
  | 0 -> Some Pad_none
  | 1 -> Some Pad_nop
  | 2 -> Some Pad_align
  | 3 -> Some Pad_guard8
  | _ -> None

let enabled t = t.mode <> Off
