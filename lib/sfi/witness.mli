(** Per-instruction safety obligations: the vocabulary of proof-carrying
    translation.

    An obligation claims that instruction [ox] of a translated program is
    safe for one specific, checkable reason. Obligations are payload-free:
    every fact they assert is re-read from the instruction at check time,
    so a witness cannot smuggle in facts the code does not exhibit (see
    {!Omni_cert.Check}). Instructions without an obligation must be shown
    harmless by the checker's own shallow scan. *)

type kind =
  | Mask_data  (** [and ded, addr, data-mask]: enters Masked(data) *)
  | Box_data  (** [or ded, ded, data-base]: Masked -> Boxed(data) *)
  | Mask_code
  | Box_code
  | Store_sandboxed  (** store through a Boxed(data) register, small disp *)
  | Store_indexed
      (** ppc: store indexed off the reserved data-base register with a
          Masked(data) offset register *)
  | Store_sp  (** sp-relative store within the guard zone *)
  | Store_abs  (** absolute store to a constant in-segment address *)
  | Store_gp  (** store through the reserved global pointer *)
  | Lui_const  (** [lui scratch, k]: scratch holds the known constant k *)
  | Store_lui  (** store via the scratch constant, landing in-segment *)
  | Jump_sandboxed  (** indirect branch through a Boxed(code) register *)
  | Sp_adjust  (** sp := sp +/- small constant *)
  | Sp_resandboxed  (** arbitrary sp write immediately re-sandboxed *)

type obligation = { ox : int; kind : kind }

val kind_code : kind -> int
(** Stable wire code (0..13) for the [omni-cert/1] encoding. *)

val kind_of_code : int -> kind option
(** Total inverse of {!kind_code}. *)

val kind_name : kind -> string
val all_kinds : kind list
val equal_obligation : obligation -> obligation -> bool
