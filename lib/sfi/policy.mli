(** Software fault isolation policy (Wahbe et al., SOSP'93).

    A mobile module owns a code segment and a data segment, each a
    power-of-two-sized region whose base is aligned to its size, so an
    address can be forced into its segment with an [and]/[or] pair. *)

(** How translators protect unsafe stores and indirect branches:
    - [Off]: no protection (trusted modules, native compiler baselines);
    - [Sandbox]: classic SFI forcing — addresses are masked into the
      segment (the configuration the paper measures);
    - [Guard]: check-and-trap — an out-of-segment access raises the OmniVM
      access-violation exception (the virtual exception model). *)
type mode = Off | Sandbox | Guard

(** Layout variants for the masking sequences, per "The Effect of
    Instruction Padding on SFI Overhead":
    - [Pad_none]: the bare and/or pair (the seed's sequence);
    - [Pad_nop]: one nop after each mask/box pair, separating the sequence
      from the dependent memory op;
    - [Pad_align]: nops so the protected memory op lands on an even
      instruction slot within its translation chunk (issue alignment);
    - [Pad_guard8]: no extra nops, but an 8 KiB guard zone (double the
      default) so displacements below 8192 skip masking entirely.

    The sp re-sandboxing triple is never padded: verifiers recognize it by
    strict adjacency. *)
type pad = Pad_none | Pad_nop | Pad_align | Pad_guard8

type t = {
  mode : mode;
  data_base : int;
  data_mask : int;  (** segment size - 1 *)
  code_base : int;
  code_mask : int;
  protect_reads : bool;
      (** also check loads — the read-protection capability the paper cites
          but does not incorporate (§1); off in the measured
          configuration *)
  pad : pad;
}

val make : ?mode:mode -> ?protect_reads:bool -> ?pad:pad -> unit -> t
(** Policy for the standard module layout ({!Omnivm.Layout}); [mode]
    defaults to [Sandbox], [protect_reads] to [false], [pad] to
    [Pad_none]. *)

val off : t
(** No protection. *)

val sandbox_data : t -> int -> int
(** The value an address is forced to by the data-segment sandboxing
    sequence: [(addr land data_mask) lor data_base]. *)

val sandbox_code : t -> int -> int

val in_data : t -> int -> bool
val in_code : t -> int -> bool

val safe_sp_disp : int
(** Stack-pointer-relative accesses with displacements below this bound
    skip SFI checks; translators maintain the invariant that sp stays
    inside the data segment. *)

val guard_zone_of_pad : pad -> int
(** Effective guard-zone size: [8192] for [Pad_guard8], [safe_sp_disp]
    otherwise. *)

val guard_zone : t -> int
(** [guard_zone_of_pad t.pad]. *)

val all_pads : pad list
val pad_name : pad -> string
val pad_of_string : string -> pad option

val pad_code : pad -> int
(** Stable 2-bit encoding (0–3), used by certificates and the wire
    protocol. *)

val pad_of_code : int -> pad option

val enabled : t -> bool
