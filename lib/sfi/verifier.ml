(* Static SFI verifier over an abstract view of translated native code.

   Each target provides a [summarize] function mapping its instructions to
   the events below; the verifier then checks the Wahbe-style invariant:

   1. dedicated registers are written only by the blessed sandboxing
      sequence (so their contents always point into the proper segment,
      even between the two halves of the sequence), and
   2. every unsafe store's address and every indirect branch target is a
      dedicated register with a small displacement.

   Because the invariant is per-instruction (not per-path), a linear scan
   suffices: no control-flow analysis is needed, which is what makes
   load-time verification cheap.

   The same scan doubles as the witness producer for proof-carrying
   translation: every event that attests a positive safety fact maps to
   exactly one {!Witness.kind}, so [certify] returns the per-instruction
   obligation list an untrusting host can later re-check in one cheap
   pass (see {!Omni_cert.Check}). Deriving obligations from the verifier's
   own event stream (rather than from a separate producer) keeps the
   witness tied to the exact facts full verification establishes. *)

type event =
  | Sandbox_data_mask (* dedicated := x & data_mask *)
  | Sandbox_data_box (* dedicated := dedicated | data_base (was Masked) *)
  | Sandbox_code_mask
  | Sandbox_code_box
  | Dedicated_clobber of string (* dedicated register written another way *)
  | Store_via_dedicated of { disp : int }
  | Store_indexed (* ppc store indexed off the reserved data base *)
  | Store_via_sp of { disp : int }
  | Store_abs (* absolute store to a constant in-segment address *)
  | Store_gp (* store through the reserved global pointer *)
  | Lui_const (* scratch := known constant (absolute-store staging) *)
  | Store_via_lui (* store via the scratch constant, landing in-segment *)
  | Store_unsafe of string
  | Jump_via_dedicated
  | Jump_unsafe of string
  | Sp_adjust_const of int (* sp := sp + small constant *)
  | Sp_resandboxed (* arbitrary sp write immediately re-sandboxed *)
  | Sp_clobber of string (* sp written from an arbitrary value, unsandboxed *)
  | Neutral

type failure = { index : int; reason : string }

(* Shared judgment: an event either fails, passes without a claim
   (Neutral), or passes by virtue of one checkable obligation. *)
let classify ?(max_disp = Policy.safe_sp_disp) (i : int) (ev : event) :
    (Witness.kind option, failure) result =
  let fail reason = Error { index = i; reason } in
  match ev with
  | Sandbox_data_mask -> Ok (Some Witness.Mask_data)
  | Sandbox_data_box -> Ok (Some Witness.Box_data)
  | Sandbox_code_mask -> Ok (Some Witness.Mask_code)
  | Sandbox_code_box -> Ok (Some Witness.Box_code)
  | Dedicated_clobber what ->
      fail (Printf.sprintf "dedicated register clobbered by %s" what)
  | Store_via_dedicated { disp } ->
      (* small negative displacements fall into the guard zone below
         the segment (unmapped), which is equally safe *)
      if disp > -max_disp && disp < max_disp then
        Ok (Some Witness.Store_sandboxed)
      else fail (Printf.sprintf "store displacement %d too large" disp)
  | Store_indexed -> Ok (Some Witness.Store_indexed)
  | Store_via_sp { disp } ->
      if disp > -max_disp && disp < max_disp then Ok (Some Witness.Store_sp)
      else fail (Printf.sprintf "sp-relative displacement %d too large" disp)
  | Store_abs -> Ok (Some Witness.Store_abs)
  | Store_gp -> Ok (Some Witness.Store_gp)
  | Lui_const -> Ok (Some Witness.Lui_const)
  | Store_via_lui -> Ok (Some Witness.Store_lui)
  | Store_unsafe what -> fail (Printf.sprintf "unprotected store: %s" what)
  | Jump_via_dedicated -> Ok (Some Witness.Jump_sandboxed)
  | Jump_unsafe what ->
      fail (Printf.sprintf "unprotected indirect branch: %s" what)
  | Sp_adjust_const k ->
      if abs k < max_disp then Ok (Some Witness.Sp_adjust)
      else fail (Printf.sprintf "sp adjusted by %d (too large)" k)
  | Sp_resandboxed -> Ok (Some Witness.Sp_resandboxed)
  | Sp_clobber what ->
      fail (Printf.sprintf "sp set from arbitrary value by %s" what)
  | Neutral -> Ok None

let verify ?max_disp (events : event array) : (unit, failure) result =
  let rec go i =
    if i >= Array.length events then Ok ()
    else
      match classify ?max_disp i events.(i) with
      | Ok _ -> go (i + 1)
      | Error f -> Error f
  in
  go 0

let certify ?max_disp (events : event array) :
    (Witness.obligation array, failure) result =
  let n = Array.length events in
  let obs = ref [] in
  let count = ref 0 in
  let rec go i =
    if i >= n then begin
      let a = Array.make !count { Witness.ox = 0; kind = Witness.Mask_data } in
      (* [obs] is in reverse index order; fill from the back *)
      List.iteri (fun j ob -> a.(!count - 1 - j) <- ob) !obs;
      Ok a
    end
    else
      match classify ?max_disp i events.(i) with
      | Ok None -> go (i + 1)
      | Ok (Some kind) ->
          obs := { Witness.ox = i; kind } :: !obs;
          incr count;
          go (i + 1)
      | Error f -> Error f
  in
  go 0
