type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* toward MRU *)
  mutable next : ('k, 'v) node option; (* toward LRU *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* MRU *)
  mutable tail : ('k, 'v) node option; (* LRU *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { cap = capacity; tbl = Hashtbl.create (max 16 capacity); head = None;
    tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  let at_head = match t.head with Some h -> h == n | None -> false in
  if not at_head then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl k)

let add t k v =
  if t.cap = 0 then None
  else
    match Hashtbl.find_opt t.tbl k with
    | Some n ->
        n.value <- v;
        promote t n;
        None
    | None ->
        let n = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.tbl k n;
        push_front t n;
        if Hashtbl.length t.tbl <= t.cap then None
        else
          match t.tail with
          | None -> assert false
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.tbl lru.key;
              Some (lru.key, lru.value)

let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
