(* Engine-agnostic load/translate/execute layer (the implementation behind
   the Omniware.Api façade — see exec.mli for why it lives here). *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Risc_translate = Omni_targets.Risc_translate
module Risc_sim = Omni_targets.Risc_sim
module Risc_verify = Omni_targets.Risc_verify
module X86 = Omni_targets.X86
module X86_translate = Omni_targets.X86_translate
module X86_sim = Omni_targets.X86_sim
module X86_verify = Omni_targets.X86_verify

type engine =
  | Interp
  | Target of Arch.t

let engine_of_string = function
  | "interp" -> Some Interp
  | s -> Option.map (fun a -> Target a) (Arch.of_string s)

(* Per-architecture mobile-translator optimization defaults, following the
   paper (section 4): Mips and PowerPC translators schedule locally; the
   Sparc translator does not schedule but uses a global pointer and fills
   delay slots; the x86 translator does floating-point scheduling and
   peephole only. *)
let mobile_opts (a : Arch.t) : Machine.topts =
  match a with
  | Arch.Mips ->
      { schedule = true; fill_delay_slots = true; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.Sparc ->
      { schedule = false; fill_delay_slots = true; use_gp = true;
        peephole = true; sfi_opt = false }
  | Arch.Ppc ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.X86 ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }

type run_result = {
  output : string;
  exit_code : int;
  outcome : Machine.outcome;
  instructions : int;
  cycles : int;
  stats : Machine.stats option; (* None for the interpreter *)
}

(* --- loading and running --- *)

let load ?(map_host_region = false) ?allow exe =
  Omni_runtime.Loader.load ?allow ~map_host_region exe

let run_interp ?(fuel = max_int) (img : Omni_runtime.Loader.image) : run_result
    =
  let outcome, st = Omni_runtime.Loader.run_interp ~fuel img in
  let outcome' =
    match outcome with
    | Omnivm.Interp.Exited c -> Machine.Exited c
    | Omnivm.Interp.Faulted f -> Machine.Faulted f
    | Omnivm.Interp.Out_of_fuel -> Machine.Out_of_fuel
  in
  {
    output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
    exit_code = (match outcome' with Machine.Exited c -> c | _ -> -1);
    outcome = outcome';
    instructions = st.Omnivm.Interp.icount;
    cycles = st.Omnivm.Interp.icount;
    stats = None;
  }

(* Translate a loaded module for a target architecture. *)
type translated =
  | T_risc of Risc.program
  | T_x86 of X86.program

let translate ?(mode : Machine.mode option) ?opts (arch : Arch.t)
    (exe : Omnivm.Exe.t) : translated =
  let mode =
    match mode with
    | Some m -> m
    | None -> Machine.Mobile (Omni_sfi.Policy.make ())
  in
  let opts = match opts with Some o -> o | None -> mobile_opts arch in
  match arch with
  | Arch.Mips ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.mips_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Sparc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.sparc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Ppc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.ppc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.X86 -> T_x86 (X86_translate.translate ~mode ~opts exe)

let run_translated ?(fuel = max_int) (tr : translated)
    (img : Omni_runtime.Loader.image) : run_result =
  let outcome, stats =
    match tr with
    | T_risc p ->
        let o, s, _ =
          Risc_sim.run ~fuel p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        (o, s)
    | T_x86 p ->
        let o, s, _ =
          X86_sim.run ~fuel p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        (o, s)
  in
  {
    output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
    exit_code = (match outcome with Machine.Exited c -> c | _ -> -1);
    outcome;
    instructions = stats.Machine.instructions;
    cycles = stats.Machine.cycles;
    stats = Some stats;
  }

(* --- structural identity and verification of translated programs --- *)

let verify (tr : translated) : (unit, string) result =
  let fail { Omni_sfi.Verifier.index; reason } =
    Error (Printf.sprintf "instruction %d: %s" index reason)
  in
  match tr with
  | T_risc p -> (
      match Risc_verify.verify p with Ok () -> Ok () | Error f -> fail f)
  | T_x86 p -> (
      match X86_verify.verify p with Ok () -> Ok () | Error f -> fail f)

let equal_translated (a : translated) (b : translated) =
  match (a, b) with
  | T_risc pa, T_risc pb -> Risc.equal_program pa pb
  | T_x86 pa, T_x86 pb -> X86.equal_program pa pb
  | _ -> false

let fingerprint = function
  | T_risc p -> Omni_util.Fnv64.mix_int (Risc.fingerprint_program p) 1
  | T_x86 p -> Omni_util.Fnv64.mix_int (X86.fingerprint_program p) 2
