(* Engine-agnostic load/translate/execute layer (the implementation behind
   the Omniware.Api façade — see exec.mli for why it lives here).

   Every phase is wrapped in an ambient Omni_obs.Trace span — translate,
   verify, run — and execution statistics (instructions, cycles, faults,
   host calls) are mirrored into the tracer's metrics registry, so a
   traced request yields a full per-phase breakdown with no change to the
   results it returns. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Risc_translate = Omni_targets.Risc_translate
module Risc_sim = Omni_targets.Risc_sim
module Risc_verify = Omni_targets.Risc_verify
module X86 = Omni_targets.X86
module X86_translate = Omni_targets.X86_translate
module X86_sim = Omni_targets.X86_sim
module X86_verify = Omni_targets.X86_verify
module Trace = Omni_obs.Trace

type engine =
  | Interp
  | Fast
  | Target of Arch.t

let valid_engines = "interp, fast, mips, sparc, ppc, x86"

let engine_of_string = function
  | "interp" -> Ok Interp
  | "fast" -> Ok Fast
  | s -> (
      match Arch.of_string s with
      | Some a -> Ok (Target a)
      | None ->
          Error
            (Printf.sprintf "unknown engine %S (valid engines: %s)" s
               valid_engines))

let engine_name = function
  | Interp -> "interp"
  | Fast -> "fast"
  | Target a -> Arch.name a

(* Per-architecture mobile-translator optimization defaults, following the
   paper (section 4): Mips and PowerPC translators schedule locally; the
   Sparc translator does not schedule but uses a global pointer and fills
   delay slots; the x86 translator does floating-point scheduling and
   peephole only. *)
let mobile_opts (a : Arch.t) : Machine.topts =
  match a with
  | Arch.Mips ->
      { schedule = true; fill_delay_slots = true; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.Sparc ->
      { schedule = false; fill_delay_slots = true; use_gp = true;
        peephole = true; sfi_opt = false }
  | Arch.Ppc ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.X86 ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }

(* Machine state at the instant a fault aborted the run, for crash
   reports. The register file is the sixteen OmniVM integer registers
   read back through each engine's register mapping, so reports are
   comparable across engines. [cs_pc] is an OmniVM code address on the
   interpreter and a native instruction index on the simulators (the
   translators keep no reverse address map). *)
type crash_site = {
  cs_pc : int;
  cs_regs : int array; (* 16 *)
  cs_window_base : int; (* absolute address of cs_window.[0]; -1 if none *)
  cs_window : string; (* raw bytes around the faulting address *)
}

type run_result = {
  output : string;
  exit_code : int;
  outcome : Machine.outcome;
  instructions : int;
  cycles : int;
  stats : Machine.stats option; (* None for the interpreter *)
  crash : crash_site option; (* Some iff outcome is Faulted *)
}

(* Hexdump window: up to 32 bytes either side of the faulting address,
   clamped to its mapped region; empty when the fault has no address or
   the address is unmapped (the common case for wild accesses). *)
let window_around mem fault =
  match Omnivm.Fault.addr_of fault with
  | None -> (-1, "")
  | Some addr -> (
      match Omnivm.Memory.region_of mem addr with
      | None -> (-1, "")
      | Some r ->
          let base = r.Omnivm.Memory.base in
          let lo = max base (addr - 32) in
          let hi = min (base + r.Omnivm.Memory.size) (addr + 32) in
          if hi <= lo then (-1, "")
          else
            ( lo,
              Bytes.to_string
                (Omnivm.Memory.read_bytes mem ~addr:lo ~len:(hi - lo)) ))

let crash_of_interp (st : Omnivm.Interp.t) fault =
  let cs_window_base, cs_window = window_around st.Omnivm.Interp.mem fault in
  {
    cs_pc = Omnivm.Exe.code_addr st.Omnivm.Interp.pc;
    cs_regs = Array.init 16 (fun i -> Omnivm.Interp.get_reg st i);
    cs_window_base;
    cs_window;
  }

let crash_of_risc (st : Risc_sim.state) fault =
  let cs_window_base, cs_window = window_around st.Risc_sim.mem fault in
  {
    cs_pc = st.Risc_sim.pc;
    cs_regs = Array.init 16 (fun i -> Risc_sim.get st (Risc.map_reg i));
    cs_window_base;
    cs_window;
  }

let crash_of_x86 (st : X86_sim.state) fault =
  let cs_window_base, cs_window = window_around st.X86_sim.mem fault in
  let reg i =
    match X86.int_home i with
    | X86.Hzero -> 0
    | X86.Hreg x -> st.X86_sim.regs.(x)
    | X86.Hmem a -> Omnivm.Memory.load32 st.X86_sim.mem a
  in
  {
    cs_pc = st.X86_sim.pc;
    cs_regs = Array.init 16 reg;
    cs_window_base;
    cs_window;
  }

(* Mirror one run's statistics into the ambient metrics registry. *)
let record_exec ~engine (img : Omni_runtime.Loader.image) (r : run_result) =
  Trace.count ~by:r.instructions "exec.instructions";
  Trace.count ~by:r.cycles "exec.cycles";
  Trace.count ~by:img.Omni_runtime.Loader.host.Omni_runtime.Host.ticks
    "exec.hostcalls";
  (match r.outcome with
  | Machine.Faulted _ -> Trace.count "exec.faults"
  | Machine.Exited _ | Machine.Out_of_fuel -> ());
  Trace.count ("exec.runs." ^ engine)

(* --- loading and running --- *)

let load ?(map_host_region = false) ?allow exe =
  Omni_runtime.Loader.load ?allow ~map_host_region exe

let run_interp ?(fuel = max_int) ?watchdog (img : Omni_runtime.Loader.image) :
    run_result =
  Trace.phase "run" ~attrs:[ ("engine", "interp") ] @@ fun () ->
  let outcome, st = Omni_runtime.Loader.run_interp ~fuel ?watchdog img in
  let outcome' =
    match outcome with
    | Omnivm.Interp.Exited c -> Machine.Exited c
    | Omnivm.Interp.Faulted f -> Machine.Faulted f
    | Omnivm.Interp.Out_of_fuel -> Machine.Out_of_fuel
  in
  let crash =
    match outcome' with
    | Machine.Faulted f -> Some (crash_of_interp st f)
    | Machine.Exited _ | Machine.Out_of_fuel -> None
  in
  let r =
    {
      output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
      exit_code = (match outcome' with Machine.Exited c -> c | _ -> -1);
      outcome = outcome';
      instructions = st.Omnivm.Interp.icount;
      cycles = st.Omnivm.Interp.icount;
      stats = None;
      crash;
    }
  in
  record_exec ~engine:"interp" img r;
  r

let run_fast ?(fuel = max_int) ?watchdog ?program
    (img : Omni_runtime.Loader.image) : run_result =
  Trace.phase "run" ~attrs:[ ("engine", "fast") ] @@ fun () ->
  let outcome, st = Omni_runtime.Loader.run_fast ~fuel ?watchdog ?program img in
  let outcome' =
    match outcome with
    | Omnivm.Interp.Exited c -> Machine.Exited c
    | Omnivm.Interp.Faulted f -> Machine.Faulted f
    | Omnivm.Interp.Out_of_fuel -> Machine.Out_of_fuel
  in
  let crash =
    match outcome' with
    | Machine.Faulted f -> Some (crash_of_interp st f)
    | Machine.Exited _ | Machine.Out_of_fuel -> None
  in
  let r =
    {
      output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
      exit_code = (match outcome' with Machine.Exited c -> c | _ -> -1);
      outcome = outcome';
      instructions = st.Omnivm.Interp.icount;
      cycles = st.Omnivm.Interp.icount;
      stats = None;
      crash;
    }
  in
  record_exec ~engine:"fast" img r;
  r

(* Translate a loaded module for a target architecture. *)
type translated =
  | T_risc of Risc.program
  | T_x86 of X86.program

let translate ?(mode : Machine.mode option) ?opts (arch : Arch.t)
    (exe : Omnivm.Exe.t) : translated =
  let mode =
    match mode with
    | Some m -> m
    | None -> Machine.Mobile (Omni_sfi.Policy.make ())
  in
  let opts = match opts with Some o -> o | None -> mobile_opts arch in
  Trace.phase "translate" ~attrs:[ ("arch", Arch.name arch) ] @@ fun () ->
  Trace.count ~by:(Array.length exe.Omnivm.Exe.text) "translate.omni_instrs";
  match arch with
  | Arch.Mips ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.mips_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Sparc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.sparc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Ppc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.ppc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.X86 -> T_x86 (X86_translate.translate ~mode ~opts exe)

let arch_of_translated = function
  | T_risc p -> Risc.arch_name p.Risc.cfg.Risc.arch
  | T_x86 _ -> "x86"

let run_translated ?(fuel = max_int) ?watchdog (tr : translated)
    (img : Omni_runtime.Loader.image) : run_result =
  let engine = arch_of_translated tr in
  Trace.phase "run" ~attrs:[ ("engine", engine) ] @@ fun () ->
  let outcome, stats, crash =
    match tr with
    | T_risc p ->
        let o, s, st =
          Risc_sim.run ~fuel ?watchdog p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        let crash =
          match o with
          | Machine.Faulted f -> Some (crash_of_risc st f)
          | Machine.Exited _ | Machine.Out_of_fuel -> None
        in
        (o, s, crash)
    | T_x86 p ->
        let o, s, st =
          X86_sim.run ~fuel ?watchdog p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        let crash =
          match o with
          | Machine.Faulted f -> Some (crash_of_x86 st f)
          | Machine.Exited _ | Machine.Out_of_fuel -> None
        in
        (o, s, crash)
  in
  let r =
    {
      output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
      exit_code = (match outcome with Machine.Exited c -> c | _ -> -1);
      outcome;
      instructions = stats.Machine.instructions;
      cycles = stats.Machine.cycles;
      stats = Some stats;
      crash;
    }
  in
  record_exec ~engine img r;
  r

(* --- structural identity and verification of translated programs --- *)

let guard_zone_of_mode (mode : Machine.mode) =
  match mode with
  | Machine.Mobile p -> Omni_sfi.Policy.guard_zone p
  | Machine.Native _ -> Omni_sfi.Policy.safe_sp_disp

let verify ?mode (tr : translated) : (unit, string) result =
  Trace.phase "verify" ~attrs:[ ("arch", arch_of_translated tr) ]
  @@ fun () ->
  (* [mode] widens the displacement bound for [Pad_guard8] translations;
     omitting it keeps the default guard zone. *)
  let max_disp = Option.map guard_zone_of_mode mode in
  let fail { Omni_sfi.Verifier.index; reason } =
    Error (Printf.sprintf "instruction %d: %s" index reason)
  in
  match tr with
  | T_risc p -> (
      match Risc_verify.verify ?max_disp p with
      | Ok () -> Ok ()
      | Error f -> fail f)
  | T_x86 p -> (
      match X86_verify.verify ?max_disp p with
      | Ok () -> Ok ()
      | Error f -> fail f)

let equal_translated (a : translated) (b : translated) =
  match (a, b) with
  | T_risc pa, T_risc pb -> Risc.equal_program pa pb
  | T_x86 pa, T_x86 pb -> X86.equal_program pa pb
  | _ -> false

let fingerprint = function
  | T_risc p -> Omni_util.Fnv64.mix_int (Risc.fingerprint_program p) 1
  | T_x86 p -> Omni_util.Fnv64.mix_int (X86.fingerprint_program p) 2

(* --- certification: produce-once / check-cheap safety witnesses --- *)

let arch_of = function
  | T_risc p -> (
      match p.Risc.cfg.Risc.arch with
      | Risc.Mips -> Arch.Mips
      | Risc.Sparc -> Arch.Sparc
      | Risc.Ppc -> Arch.Ppc)
  | T_x86 _ -> Arch.X86

let certify ~(module_digest : Omni_util.Fnv64.t) ~(mode : Machine.mode)
    ~(opts : Machine.topts) (tr : translated) :
    (Omni_cert.Certificate.t, string) result =
  Trace.phase "certify" ~attrs:[ ("arch", arch_of_translated tr) ]
  @@ fun () ->
  let protect_reads, pad =
    match mode with
    | Machine.Mobile p ->
        (p.Omni_sfi.Policy.protect_reads, p.Omni_sfi.Policy.pad)
    | Machine.Native _ -> (false, Omni_sfi.Policy.Pad_none)
  in
  let max_disp = Omni_sfi.Policy.guard_zone_of_pad pad in
  let fail { Omni_sfi.Verifier.index; reason } =
    Error (Printf.sprintf "instruction %d: %s" index reason)
  in
  let mk n_code obs =
    Omni_cert.Certificate.make ~arch:(arch_of tr) ~module_digest
      ~code_fp:(fingerprint tr) ~protect_reads ~pad ~opts ~n_code obs
  in
  match tr with
  | T_risc p -> (
      match Risc_verify.certify ~max_disp p with
      | Ok obs -> Ok (mk (Array.length p.Risc.code) obs)
      | Error f -> fail f)
  | T_x86 p -> (
      match X86_verify.certify ~max_disp p with
      | Ok obs -> Ok (mk (Array.length p.X86.code) obs)
      | Error f -> fail f)

let check_cert ~(module_digest : Omni_util.Fnv64.t) ~(mode : Machine.mode)
    ~(opts : Machine.topts) ?code_fp (cert : Omni_cert.Certificate.t)
    (tr : translated) : (unit, string) result =
  Trace.phase "cert.check" ~attrs:[ ("arch", arch_of_translated tr) ]
  @@ fun () ->
  (* [code_fp] lets callers that already hold the fingerprint (the cache
     stores it with each entry) skip recomputing it — that hash is most
     of the checking cost for small programs. *)
  let code_fp = match code_fp with Some fp -> fp | None -> fingerprint tr in
  let err e = Error (Omni_cert.Check.error_to_string e) in
  match
    Omni_cert.Check.bind cert ~module_digest ~arch:(arch_of tr) ~mode ~opts
      ~code_fp
  with
  | Error e -> err e
  | Ok () -> (
      match tr with
      | T_risc p -> (
          match Omni_cert.Check.check_risc cert p with
          | Ok () -> Ok ()
          | Error e -> err e)
      | T_x86 p -> (
          match Omni_cert.Check.check_x86 cert p with
          | Ok () -> Ok ()
          | Error e -> err e))
