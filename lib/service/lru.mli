(** Generic bounded LRU map (hash table + intrusive doubly-linked list).

    [find] promotes its binding to most-recently-used; [add] inserts at the
    MRU end and evicts the LRU binding once the capacity is exceeded. A
    capacity of 0 disables the map entirely: [add] stores nothing and
    [find] never hits, which is how the translation cache implements its
    "caching off" configuration. Keys use polymorphic hashing/equality, so
    they must be pure data. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument on a negative capacity. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the binding to most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} without promoting — recency order is unchanged. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert (or replace) a binding at the MRU position, returning the
    binding evicted to stay within capacity, if any. *)

val keys_mru_first : ('k, 'v) t -> 'k list
(** Recency order, most recent first (for tests and introspection). *)
