(** Content-addressed module store.

    A serving host receives the same module bytes over and over — one
    upload per client, thousands of loads. The store digests the wire
    bytes (FNV-1a/64), deduplicates identical modules, and keeps the
    decoded executable plus a validated loading {!Omni_runtime.Loader.blueprint}
    so later instantiations skip decoding and size checks entirely.

    Admission is strict: {!submit} decodes (validating the wire format)
    and computes the blueprint (validating segment fit), so a handle
    always names a loadable module. *)

type handle
(** Names a stored module; content-derived, so equal bytes yield equal
    handles. *)

val digest : handle -> Omni_util.Fnv64.t
val digest_hex : handle -> string
val equal_handle : handle -> handle -> bool

type t

val create :
  ?counters:Counters.t -> ?persist:Omni_persist.Store.t -> ?shards:int ->
  unit -> t
(** [counters] lets a service aggregate store activity with the rest of
    the pipeline; a private record is used when omitted. [persist]
    attaches a journaled on-disk store: every fresh admission is
    journaled (write-behind, under the module's shard lock) so it
    survives a restart. [shards] (default 8, rounded up to a power of
    two) partitions the store by digest so concurrent submits and
    lookups of unrelated modules never contend; all operations are safe
    from multiple domains, and counter accounting stays exact under
    races (a module concurrently submitted by many clients is stored
    once, the rest count as dedup hits). *)

exception Collision of handle
(** Two distinct byte strings hit the same digest (astronomically
    unlikely; detected by byte comparison on every dedup hit). *)

val submit : ?producer:string -> t -> string -> handle
(** Admit wire bytes, deduplicating by content. [producer] names the
    front-end that made the module (e.g. ["minic"], ["stackvm"]); it is
    attribution metadata only — on a dedup hit the first submission's
    attribution is kept.
    @raise Omnivm.Wire.Bad_module on malformed bytes.
    @raise Invalid_argument if the module's data does not fit.
    @raise Collision on a digest collision. *)

val restore : t -> string -> handle
(** Re-admit module bytes recovered from the persistent store: counted
    as a held module ([modules], [bytes_stored]) but not as client
    traffic (no [submits]), and never re-journaled. The bytes were
    validated by recovery, but the decode runs again — a handle always
    names a loadable module, whatever its provenance. *)

exception Unknown_handle
(** Raised by the accessors below for a handle this store never issued. *)

val bytes : t -> handle -> string
val exe : t -> handle -> Omnivm.Exe.t
val blueprint : t -> handle -> Omni_runtime.Loader.blueprint

val predecoded : t -> handle -> Omnivm.Fastinterp.program
(** The module's pre-decoded fast-interpreter program, compiled on the
    first call for a digest and shared by every later one (programs are
    immutable). Accounting is exact even under concurrent first calls:
    one [vm.predecode.miss], hits for everyone else. *)

val producer : t -> handle -> string option
(** The declared front-end attribution, if any (flows into crash
    reports; see {!Supervise.report}). *)

val modules : t -> int
