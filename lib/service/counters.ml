(* Serving-stack instrumentation, rebased onto the Omni_obs.Metrics
   registry: every field is a named instrument in one registry per
   Service.t, so service stats, the bench harness, and `omnirun serve
   --metrics` all read one source of truth (and the phase histograms the
   tracer records land in the same registry). *)

module Metrics = Omni_obs.Metrics

type t = {
  m : Metrics.t;
  (* module store *)
  submits : Metrics.counter;
  modules : Metrics.counter;
  dedup_hits : Metrics.counter;
  bytes_stored : Metrics.counter;
  predecode_hits : Metrics.counter;
  predecode_misses : Metrics.counter;
  (* translation cache *)
  hits : Metrics.counter;
  misses : Metrics.counter;
  evictions : Metrics.counter;
  translations : Metrics.counter;
  verifications : Metrics.counter;
  cert_checks : Metrics.counter;
  cert_full_verify : Metrics.counter;
  verify_fail : Metrics.counter;
  cold_translate : Metrics.histogram;
  warm_admit : Metrics.histogram;
  (* service front-end *)
  instantiations : Metrics.counter;
  (* execution supervision *)
  quarantine_trips : Metrics.counter;
  quarantine_refused : Metrics.counter;
  quarantine_cleared : Metrics.counter;
  crash_reports : Metrics.counter;
  deadline_exceeded : Metrics.counter;
  (* persistent store (names shared with Omni_persist via registry
     dedupe: both layers read and bump the same instruments) *)
  persist_append : Metrics.counter;
  persist_replay : Metrics.counter;
  persist_recovered : Metrics.counter;
  persist_quarantined : Metrics.counter;
  persist_torn : Metrics.counter;
}

let create ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    m;
    submits = Metrics.counter m "service.submits";
    modules = Metrics.counter m "service.modules";
    dedup_hits = Metrics.counter m "service.dedup_hits";
    bytes_stored = Metrics.counter m "service.bytes_stored";
    predecode_hits = Metrics.counter m "vm.predecode.hit";
    predecode_misses = Metrics.counter m "vm.predecode.miss";
    hits = Metrics.counter m "service.cache.hits";
    misses = Metrics.counter m "service.cache.misses";
    evictions = Metrics.counter m "service.cache.evictions";
    translations = Metrics.counter m "service.translations";
    verifications = Metrics.counter m "service.verifications";
    cert_checks = Metrics.counter m "service.cache.cert_check";
    cert_full_verify = Metrics.counter m "service.cache.cert_full_verify";
    verify_fail = Metrics.counter m "service.cache.verify_fail";
    cold_translate = Metrics.histogram m "service.cold_translate_s";
    warm_admit = Metrics.histogram m "service.warm_admit_s";
    instantiations = Metrics.counter m "service.instantiations";
    quarantine_trips = Metrics.counter m "service.quarantine.trips";
    quarantine_refused = Metrics.counter m "service.quarantine.refused";
    quarantine_cleared = Metrics.counter m "service.quarantine.cleared";
    crash_reports = Metrics.counter m "exec.crash.reports";
    deadline_exceeded = Metrics.counter m "exec.deadline.exceeded";
    persist_append = Metrics.counter m "persist.append";
    persist_replay = Metrics.counter m "persist.replay";
    persist_recovered = Metrics.counter m "persist.recovered";
    persist_quarantined = Metrics.counter m "persist.quarantined";
    persist_torn = Metrics.counter m "persist.torn";
  }

let metrics t = t.m
let reset t = Metrics.reset t.m

(* --- immutable snapshot --- *)

type snapshot = {
  s_submits : int;
  s_modules : int;
  s_dedup_hits : int;
  s_bytes_stored : int;
  s_predecode_hits : int;
  s_predecode_misses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_translations : int;
  s_verifications : int;
  s_cert_checks : int;
  s_cert_full_verify : int;
  s_verify_fail : int;
  s_cold_translate_s : float;
  s_warm_admit_s : float;
  s_instantiations : int;
  s_quarantine_trips : int;
  s_quarantine_refused : int;
  s_quarantine_cleared : int;
  s_crash_reports : int;
  s_deadline_exceeded : int;
  s_persist_append : int;
  s_persist_replay : int;
  s_persist_recovered : int;
  s_persist_quarantined : int;
  s_persist_torn : int;
}

let snapshot t : snapshot =
  {
    s_submits = Metrics.value t.submits;
    s_modules = Metrics.value t.modules;
    s_dedup_hits = Metrics.value t.dedup_hits;
    s_bytes_stored = Metrics.value t.bytes_stored;
    s_predecode_hits = Metrics.value t.predecode_hits;
    s_predecode_misses = Metrics.value t.predecode_misses;
    s_hits = Metrics.value t.hits;
    s_misses = Metrics.value t.misses;
    s_evictions = Metrics.value t.evictions;
    s_translations = Metrics.value t.translations;
    s_verifications = Metrics.value t.verifications;
    s_cert_checks = Metrics.value t.cert_checks;
    s_cert_full_verify = Metrics.value t.cert_full_verify;
    s_verify_fail = Metrics.value t.verify_fail;
    s_cold_translate_s = Metrics.histogram_sum t.cold_translate;
    s_warm_admit_s = Metrics.histogram_sum t.warm_admit;
    s_instantiations = Metrics.value t.instantiations;
    s_quarantine_trips = Metrics.value t.quarantine_trips;
    s_quarantine_refused = Metrics.value t.quarantine_refused;
    s_quarantine_cleared = Metrics.value t.quarantine_cleared;
    s_crash_reports = Metrics.value t.crash_reports;
    s_deadline_exceeded = Metrics.value t.deadline_exceeded;
    s_persist_append = Metrics.value t.persist_append;
    s_persist_replay = Metrics.value t.persist_replay;
    s_persist_recovered = Metrics.value t.persist_recovered;
    s_persist_quarantined = Metrics.value t.persist_quarantined;
    s_persist_torn = Metrics.value t.persist_torn;
  }

let hit_rate s =
  let n = s.s_hits + s.s_misses in
  if n = 0 then 0.0 else float_of_int s.s_hits /. float_of_int n

let render s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "module store:      %d modules (%d submits, %d deduped, %d bytes)\n"
    s.s_modules s.s_submits s.s_dedup_hits s.s_bytes_stored;
  Printf.bprintf b
    "predecode cache:   %d hits / %d misses\n"
    s.s_predecode_hits s.s_predecode_misses;
  Printf.bprintf b
    "translation cache: %d hits / %d misses (%.1f%% hit rate), %d evictions\n"
    s.s_hits s.s_misses (100.0 *. hit_rate s) s.s_evictions;
  Printf.bprintf b
    "translations:      %d cold (%.1f ms total); %d verifier runs (%.1f ms warm admission)\n"
    s.s_translations (1e3 *. s.s_cold_translate_s) s.s_verifications
    (1e3 *. s.s_warm_admit_s);
  Printf.bprintf b
    "certificates:      %d witness checks, %d full re-verifies, %d warm admissions failed\n"
    s.s_cert_checks s.s_cert_full_verify s.s_verify_fail;
  Printf.bprintf b "instantiations:    %d\n" s.s_instantiations;
  Printf.bprintf b
    "supervision:       %d crash reports (%d deadline), quarantine %d trips / %d refused / %d cleared\n"
    s.s_crash_reports s.s_deadline_exceeded s.s_quarantine_trips
    s.s_quarantine_refused s.s_quarantine_cleared;
  Printf.bprintf b
    "persistence:       %d appends; recovery replayed %d (%d recovered, %d quarantined, %d torn)\n"
    s.s_persist_append s.s_persist_replay s.s_persist_recovered
    s.s_persist_quarantined s.s_persist_torn;
  Buffer.contents b

let pp fmt s = Format.pp_print_string fmt (render s)

let to_json s =
  Printf.sprintf
    "{\"submits\":%d,\"modules\":%d,\"dedup_hits\":%d,\"bytes_stored\":%d,\"predecode_hits\":%d,\"predecode_misses\":%d,\"hits\":%d,\"misses\":%d,\"hit_rate\":%.4f,\"evictions\":%d,\"translations\":%d,\"verifications\":%d,\"cert_checks\":%d,\"cert_full_verify\":%d,\"verify_fail\":%d,\"cold_translate_s\":%.6f,\"warm_admit_s\":%.6f,\"instantiations\":%d,\"quarantine_trips\":%d,\"quarantine_refused\":%d,\"quarantine_cleared\":%d,\"crash_reports\":%d,\"deadline_exceeded\":%d,\"persist_append\":%d,\"persist_replay\":%d,\"persist_recovered\":%d,\"persist_quarantined\":%d,\"persist_torn\":%d}"
    s.s_submits s.s_modules s.s_dedup_hits s.s_bytes_stored
    s.s_predecode_hits s.s_predecode_misses s.s_hits
    s.s_misses (hit_rate s) s.s_evictions s.s_translations s.s_verifications
    s.s_cert_checks s.s_cert_full_verify s.s_verify_fail
    s.s_cold_translate_s s.s_warm_admit_s s.s_instantiations
    s.s_quarantine_trips s.s_quarantine_refused s.s_quarantine_cleared
    s.s_crash_reports s.s_deadline_exceeded s.s_persist_append
    s.s_persist_replay s.s_persist_recovered s.s_persist_quarantined
    s.s_persist_torn

(* Inverse of [to_json], total on arbitrary text: the writer is ours and
   emits one flat object of numeric fields, so a comma/colon scanner
   suffices (the same stance as the bench snapshot reader). Unknown keys
   are ignored; missing keys read as zero, so snapshots from before a
   field existed still parse. [hit_rate] is derived, not stored. *)
let of_json text : snapshot =
  let fields =
    match (String.index_opt text '{', String.rindex_opt text '}') with
    | Some i, Some j when j > i ->
        String.sub text (i + 1) (j - i - 1)
        |> String.split_on_char ','
        |> List.filter_map (fun part ->
               match String.index_opt part ':' with
               | None -> None
               | Some c ->
                   let key = String.trim (String.sub part 0 c) in
                   let key =
                     if
                       String.length key >= 2
                       && key.[0] = '"'
                       && key.[String.length key - 1] = '"'
                     then String.sub key 1 (String.length key - 2)
                     else key
                   in
                   let v =
                     String.trim
                       (String.sub part (c + 1) (String.length part - c - 1))
                   in
                   Some (key, v))
    | _ -> []
  in
  let geti k =
    match List.assoc_opt k fields with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
    | None -> 0
  in
  let getf k =
    match List.assoc_opt k fields with
    | Some v -> ( match float_of_string_opt v with Some f -> f | None -> 0.0)
    | None -> 0.0
  in
  {
    s_submits = geti "submits";
    s_modules = geti "modules";
    s_dedup_hits = geti "dedup_hits";
    s_bytes_stored = geti "bytes_stored";
    s_predecode_hits = geti "predecode_hits";
    s_predecode_misses = geti "predecode_misses";
    s_hits = geti "hits";
    s_misses = geti "misses";
    s_evictions = geti "evictions";
    s_translations = geti "translations";
    s_verifications = geti "verifications";
    s_cert_checks = geti "cert_checks";
    s_cert_full_verify = geti "cert_full_verify";
    s_verify_fail = geti "verify_fail";
    s_cold_translate_s = getf "cold_translate_s";
    s_warm_admit_s = getf "warm_admit_s";
    s_instantiations = geti "instantiations";
    s_quarantine_trips = geti "quarantine_trips";
    s_quarantine_refused = geti "quarantine_refused";
    s_quarantine_cleared = geti "quarantine_cleared";
    s_crash_reports = geti "crash_reports";
    s_deadline_exceeded = geti "deadline_exceeded";
    s_persist_append = geti "persist_append";
    s_persist_replay = geti "persist_replay";
    s_persist_recovered = geti "persist_recovered";
    s_persist_quarantined = geti "persist_quarantined";
    s_persist_torn = geti "persist_torn";
  }
