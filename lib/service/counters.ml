type t = {
  mutable submits : int;
  mutable modules : int;
  mutable dedup_hits : int;
  mutable bytes_stored : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable translations : int;
  mutable verifications : int;
  mutable cold_translate_s : float;
  mutable warm_admit_s : float;
  mutable instantiations : int;
}

let create () =
  {
    submits = 0;
    modules = 0;
    dedup_hits = 0;
    bytes_stored = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    translations = 0;
    verifications = 0;
    cold_translate_s = 0.0;
    warm_admit_s = 0.0;
    instantiations = 0;
  }

let reset c =
  c.submits <- 0;
  c.modules <- 0;
  c.dedup_hits <- 0;
  c.bytes_stored <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0;
  c.translations <- 0;
  c.verifications <- 0;
  c.cold_translate_s <- 0.0;
  c.warm_admit_s <- 0.0;
  c.instantiations <- 0

let hit_rate c =
  let n = c.hits + c.misses in
  if n = 0 then 0.0 else float_of_int c.hits /. float_of_int n

let render c =
  let b = Buffer.create 256 in
  Printf.bprintf b "module store:      %d modules (%d submits, %d deduped, %d bytes)\n"
    c.modules c.submits c.dedup_hits c.bytes_stored;
  Printf.bprintf b
    "translation cache: %d hits / %d misses (%.1f%% hit rate), %d evictions\n"
    c.hits c.misses (100.0 *. hit_rate c) c.evictions;
  Printf.bprintf b
    "translations:      %d cold (%.1f ms total); %d verifier runs (%.1f ms warm admission)\n"
    c.translations (1e3 *. c.cold_translate_s) c.verifications
    (1e3 *. c.warm_admit_s);
  Printf.bprintf b "instantiations:    %d\n" c.instantiations;
  Buffer.contents b
