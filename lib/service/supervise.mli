(** Execution supervision: crash reports, quarantine, deterministic replay.

    The paper's virtual exception model makes a faulting module a normal,
    recoverable event; this module makes it a structured, actionable one:

    - a {!report} captures the fault, the machine state at the fault, the
      request that provoked it, and the module's wire bytes — a
      self-contained replay bundle with a stable JSON form;
    - {!replay} re-executes a bundle in-process and {!check_replay}
      asserts the same fault reproduces (deterministic faults only);
    - {!Quarantine} is a per-digest circuit breaker: a module that faults
      deterministically [threshold] times is refused for [ttl_s] seconds
      instead of burning translate+execute cost. *)

module Fault = Omnivm.Fault
module Machine = Omni_targets.Machine

val wall_clock : Omni_util.Clock.t
(** Real wall time ([Unix.gettimeofday]) as an injectable clock — the
    default clock for watchdogs and quarantine TTLs. *)

val watchdog :
  ?poll_every:int -> budget_s:float -> unit -> Omnivm.Watchdog.t
(** A watchdog over {!wall_clock} expiring [budget_s] seconds from now. *)

val transient : Fault.t -> bool
(** A transient fault depends on conditions outside the module's control
    (currently only [Deadline_exceeded]); transient faults never count
    toward quarantine and replay does not assert their reproduction. *)

(** One faulted run, fully described. *)
type report = {
  r_fault : Fault.t;
  r_engine : Exec.engine;
  r_sfi : bool;
  r_producer : string option;
      (** the front-end that produced the module (e.g. ["minic"],
          ["stackvm"]), when the submitter declared one — a crash report
          names which producer's output misbehaved *)
  r_digest : Omni_util.Fnv64.t;  (** content digest of [r_wire] *)
  r_fuel : int option;  (** the request's instruction budget *)
  r_fuel_spent : int;  (** instructions executed before the fault *)
  r_pc : int;  (** see {!Exec.crash_site} for engine-specific meaning *)
  r_regs : int array;  (** the 16 OmniVM integer registers at the fault *)
  r_window_base : int;
  r_window : string;  (** memory around the faulting address, if any *)
  r_wire : string;  (** the module bytes: the replay bundle *)
}

val of_run :
  engine:Exec.engine ->
  sfi:bool ->
  ?producer:string ->
  ?fuel:int ->
  wire:string ->
  Exec.run_result ->
  report option
(** [Some report] iff the run faulted. *)

exception Bad_report of string

val to_json : report -> string
(** One-line JSON object; byte fields are hex-encoded, so the document
    never needs string escaping. *)

val of_json : string -> report
(** Inverse of {!to_json}.
    @raise Bad_report on malformed input. *)

val filename : report -> string
(** Conventional file name ([crash-<digest>-<engine>-<fault>.json]) for
    [omnirun --crash-dir]. *)

val write_report : dir:string -> report -> string
(** Write the report as JSON under its {!filename} in [dir], creating
    the directory (and parents) if missing; returns the path written —
    the one way [omnirun --crash-dir] and the daemon drop reports. *)

val pp : Format.formatter -> report -> unit
(** Multi-line human-readable rendering with a register dump and hexdump
    window. *)

val replay :
  ?watchdog:Omnivm.Watchdog.t -> ?engine:Exec.engine -> report -> Exec.run_result
(** Re-execute the bundled request in-process: decode [r_wire], derive
    mode/opts from [r_sfi] exactly as the original run did, run with
    [r_fuel] on [r_engine] (or [engine] when overridden, e.g. to check a
    fault reproduces across architectures). A transient bundle with no
    fuel of its own (and no [watchdog] given) is bounded by
    [r_fuel_spent] — replay always terminates, even for a module that
    only stopped because the wall clock ran out. *)

(** Outcome of {!check_replay}. *)
type verdict =
  | Reproduced  (** the replayed run faulted identically *)
  | Transient of Machine.outcome
      (** the original fault was wall-clock dependent; no assertion made *)
  | Diverged of Machine.outcome  (** the replayed run behaved differently *)

val check_replay :
  ?watchdog:Omnivm.Watchdog.t -> ?engine:Exec.engine -> report -> verdict

(** Per-digest circuit breaker over deterministic faults. *)
module Quarantine : sig
  type config = {
    threshold : int;  (** deterministic faults before the breaker trips *)
    ttl_s : float;  (** how long a tripped breaker refuses the digest *)
    clock : Omni_util.Clock.t;  (** injectable for tests *)
  }

  val default_config : config
  (** threshold 3, ttl 300 s, {!wall_clock}. *)

  type t

  exception
    Quarantined of {
      digest : Omni_util.Fnv64.t;
      fault : Fault.t;  (** the last deterministic fault recorded *)
      until_s : float;  (** clock reading at which the TTL expires *)
    }

  val create : config -> t
  (** @raise Invalid_argument unless [threshold > 0] and [ttl_s > 0]. *)

  val check : t -> Omni_util.Fnv64.t -> unit
  (** Gate a request: no-op for healthy digests; removes an entry whose
      TTL has expired (fresh chances).
      @raise Quarantined while the digest's breaker is tripped. *)

  val note : t -> Omni_util.Fnv64.t -> Machine.outcome -> bool
  (** Record one run's outcome. Deterministic faults strike; a clean exit
      resets the strike count; transient faults and fuel exhaustion are
      neutral. Returns [true] when this note tripped the breaker. *)

  val clear : t -> Omni_util.Fnv64.t -> bool
  (** Manually lift a quarantine; [false] if the digest was not
      quarantined. *)

  val clear_all : t -> int
  (** Lift every quarantine; returns how many were lifted. *)

  val active : t -> (Omni_util.Fnv64.t * float) list
  (** Currently-quarantined digests with their expiry times. *)

  val strikes : t -> Omni_util.Fnv64.t -> int
  (** Current strike count (0 for unknown digests). *)
end
