(** Instrumentation shared by every layer of the serving stack.

    One mutable record per {!Service.t}, threaded through the module store
    and the translation cache so a single snapshot describes the whole
    pipeline. Times are CPU seconds from [Sys.time] — the same clock the
    benchmark harness uses for its load-time measurements. *)

type t = {
  (* module store *)
  mutable submits : int;  (** total [submit] calls *)
  mutable modules : int;  (** distinct modules admitted *)
  mutable dedup_hits : int;  (** submits deduplicated by content digest *)
  mutable bytes_stored : int;  (** wire bytes held (deduplicated) *)
  (* translation cache *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable translations : int;  (** actual translator runs (= misses) *)
  mutable verifications : int;  (** static SFI verifier runs *)
  mutable cold_translate_s : float;  (** translate + admission on a miss *)
  mutable warm_admit_s : float;  (** re-verification on a hit *)
  (* service front-end *)
  mutable instantiations : int;  (** images stamped out *)
}

val create : unit -> t
val reset : t -> unit

val hit_rate : t -> float
(** Hits over (hits + misses); 0 when the cache was never consulted. *)

val render : t -> string
(** Multi-line human-readable snapshot. *)
