(** Instrumentation shared by every layer of the serving stack.

    One set of named instruments in one {!Omni_obs.Metrics} registry per
    {!Service.t}, threaded through the module store and the translation
    cache so a single {!snapshot} describes the whole pipeline — and so
    the registry is the single source of truth shared with the tracer's
    per-phase histograms. Times are CPU seconds from [Sys.time] — the same
    clock the benchmark harness uses for its load-time measurements. *)

module Metrics = Omni_obs.Metrics

type t = {
  m : Metrics.t;  (** the backing registry *)
  (* module store *)
  submits : Metrics.counter;  (** total [submit] calls *)
  modules : Metrics.counter;  (** distinct modules admitted *)
  dedup_hits : Metrics.counter;  (** submits deduplicated by digest *)
  bytes_stored : Metrics.counter;  (** wire bytes held (deduplicated) *)
  predecode_hits : Metrics.counter;
      (** fast-engine runs served a shared pre-decoded program *)
  predecode_misses : Metrics.counter;
      (** fast-engine runs that compiled the program (once per digest) *)
  (* translation cache *)
  hits : Metrics.counter;
  misses : Metrics.counter;
  evictions : Metrics.counter;
  translations : Metrics.counter;  (** actual translator runs (= misses) *)
  verifications : Metrics.counter;  (** full static SFI verifier runs *)
  cert_checks : Metrics.counter;
      (** warm admissions via cheap certificate check *)
  cert_full_verify : Metrics.counter;
      (** warm admissions that had to fall back to a full re-verify *)
  verify_fail : Metrics.counter;
      (** cache hits whose admission check failed (rejected, not a miss) *)
  cold_translate : Metrics.histogram;
      (** seconds of translate + admission per miss *)
  warm_admit : Metrics.histogram;  (** seconds of re-verification per hit *)
  (* service front-end *)
  instantiations : Metrics.counter;  (** images stamped out *)
  (* execution supervision (see {!Supervise}) *)
  quarantine_trips : Metrics.counter;  (** breakers tripped *)
  quarantine_refused : Metrics.counter;  (** requests refused while tripped *)
  quarantine_cleared : Metrics.counter;  (** manual clears *)
  crash_reports : Metrics.counter;  (** faulted runs reported *)
  deadline_exceeded : Metrics.counter;  (** watchdog faults among them *)
  (* persistent store (see {!Omni_persist.Store}; both layers share these
     instruments by registry name dedupe) *)
  persist_append : Metrics.counter;  (** records journaled to disk *)
  persist_replay : Metrics.counter;  (** journal records replayed at open *)
  persist_recovered : Metrics.counter;  (** records re-admitted after proof *)
  persist_quarantined : Metrics.counter;  (** records refused, with reason *)
  persist_torn : Metrics.counter;  (** torn tails dropped *)
}

val create : ?metrics:Metrics.t -> unit -> t
(** Register the serving instruments in [metrics] (default: a fresh
    registry). *)

val metrics : t -> Metrics.t
val reset : t -> unit

(** Immutable reading of every instrument — what {!Service.stats}
    returns. *)
type snapshot = {
  s_submits : int;
  s_modules : int;
  s_dedup_hits : int;
  s_bytes_stored : int;
  s_predecode_hits : int;
  s_predecode_misses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_translations : int;
  s_verifications : int;
  s_cert_checks : int;
  s_cert_full_verify : int;
  s_verify_fail : int;
  s_cold_translate_s : float;  (** total seconds across cold translates *)
  s_warm_admit_s : float;  (** total seconds across warm admissions *)
  s_instantiations : int;
  s_quarantine_trips : int;
  s_quarantine_refused : int;
  s_quarantine_cleared : int;
  s_crash_reports : int;
  s_deadline_exceeded : int;
  s_persist_append : int;
  s_persist_replay : int;
  s_persist_recovered : int;
  s_persist_quarantined : int;
  s_persist_torn : int;
}

val snapshot : t -> snapshot

val hit_rate : snapshot -> float
(** Hits over (hits + misses); 0 when the cache was never consulted. *)

val render : snapshot -> string
(** Multi-line human-readable form. *)

val pp : Format.formatter -> snapshot -> unit

val to_json : snapshot -> string
(** One-line JSON object (what [omnirun serve --stats] prints). Every
    snapshot field is present (plus the derived [hit_rate]); adding a
    counter means extending snapshot, render, [to_json] {e and}
    [of_json] together — the qcheck round-trip test enforces it. *)

val of_json : string -> snapshot
(** Inverse of {!to_json}; total on arbitrary text (unknown keys
    ignored, missing keys zero). [of_json (to_json s) = s] up to the
    6-decimal precision of the two histogram fields. *)
