(** Memoizing translation cache.

    Translation is a pure function of (module bytes, arch, mode, opts), so
    its result can be cached across loads. Entries are keyed by the
    module's content digest plus the full translation configuration and
    held under LRU eviction with a configurable capacity (0 disables
    caching).

    {b Invariant}: a cache hit is observationally identical to a fresh
    translation. This holds because (a) keys embed every input of the
    (pure) translator, (b) the store guarantees a digest names one byte
    string, and (c) every hit still passes an admission check before the
    cached code can reach a simulator. Since PR 6 that check is the cheap
    certificate check ({!Exec.check_cert}) against the witness minted at
    insertion — proof-carrying translation — rather than a full re-run of
    the verifier; a corrupted cache still cannot reach the simulator.
    [test/test_service.ml] and [test/test_cert.ml] check the invariant
    end to end.

    Sandboxed translations that fail the verifier are rejected and never
    cached. *)

module Machine = Omni_targets.Machine

type key

val key :
  digest:Omni_util.Fnv64.t ->
  arch:Omni_targets.Arch.t ->
  mode:Machine.mode ->
  opts:Machine.topts ->
  key
(** [mode] and [opts] must be the resolved values actually passed to the
    translator (after defaulting), so equal configurations share an
    entry. *)

(** Verifier verdict recorded with each cached translation. *)
type verdict =
  | Verified  (** static SFI verifier passed (Sandbox-mode translations) *)
  | Not_applicable
      (** nothing to verify: SFI off, Guard mode, or a native baseline *)

type entry = {
  tr : Exec.translated;
  verdict : verdict;
  fp : Omni_util.Fnv64.t;  (** fingerprint at insertion time *)
  cert : Omni_cert.Certificate.t option;
      (** safety witness minted at insertion; [Some] iff [Verified] *)
}

exception Rejected of string
(** The static SFI verifier rejected a sandboxed translation (fresh or
    cached) — the code never reaches a simulator. *)

type t

val create :
  ?capacity:int -> ?persist:Omni_persist.Store.t -> ?shards:int ->
  Counters.t -> t
(** [persist] attaches a journaled on-disk store: certified cold
    translations are journaled (write-behind, under the shard lock) so a
    restart recovers them instead of re-translating; entries without a
    witness (SFI off, Guard mode, native baselines) are never persisted
    because recovery could not re-prove them.
    Default capacity: 256 translation configurations, spread over
    [shards] (default 8, rounded up to a power of two) independent LRUs
    partitioned by module digest — every configuration of one module
    shares a shard, distinct modules rarely contend. Each shard gets an
    equal slice of [capacity], at least 1, so the effective capacity
    rounds up to a multiple of the shard count; capacity 0 still
    disables caching entirely. All operations are safe from multiple
    domains, and the counters stay exact under races: one miss and one
    translation per distinct configuration, every other access a hit. *)

val capacity : t -> int
(** Effective total capacity (sum over shards; see {!create}). *)

val length : t -> int

val find_or_translate : t -> key -> Omnivm.Exe.t -> Exec.translated
(** The memoized translator. On a miss: translate, certify (full
    verification + witness minting, counted in [service.verifications]),
    cache, count a translation. On a hit: check the stored witness
    (counted in [service.cache.cert_check]) and return the cached
    program, touching neither the translator nor the full verifier. A
    hit whose admission check fails counts as
    [service.cache.verify_fail] before raising.
    @raise Rejected as described above. *)

val peek : t -> key -> entry option
(** Inspect a cached entry without promoting it (for tests and
    introspection). *)

val restore : t -> Omni_persist.Store.rtrans -> unit
(** Re-admit a translation recovered (and proven) by the persistent
    store's replay: enters as [Verified] with its certificate, counts
    neither a miss nor a translation, and is not re-journaled. Warm hits
    on restored entries still re-check the witness like any other entry
    — [cache.cert.check] rises, [cache.cert.full_verify] does not. *)

val inject : t -> key -> entry -> unit
(** Test hook: overwrite a cached entry, simulating cache corruption.
    The next hit's admission check must refuse the poisoned entry
    (raising {!Rejected} and counting [service.cache.verify_fail]) —
    the invariant documented above. Not for production use. *)
