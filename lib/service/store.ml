module Fnv64 = Omni_util.Fnv64
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

type handle = Fnv64.t

let digest h = h
let digest_hex = Fnv64.to_hex
let equal_handle = Fnv64.equal

type entry = {
  e_bytes : string;
  e_exe : Omnivm.Exe.t;
  e_blueprint : Omni_runtime.Loader.blueprint;
  e_producer : string option; (* front-end attribution, first submitter wins *)
}

(* Sharded by digest so concurrent submits and lookups of unrelated
   modules never contend. Each shard is an independent table behind its
   own mutex; an entry, once inserted, is immutable, so a reference
   returned by a lookup stays valid after the lock is dropped. Shard
   locks are leaf-level: nothing is called while holding one except the
   decoder/blueprint builder (pure) and atomic counter bumps. *)
type shard = {
  mu : Mutex.t;
  tbl : (Fnv64.t, entry) Hashtbl.t;
  (* pre-decoded fast-interpreter programs, filled lazily on the first
     fast-engine run of a digest. Programs are immutable and carry no run
     state, so one compile is shared by every concurrent run. *)
  ptbl : (Fnv64.t, Omnivm.Fastinterp.program) Hashtbl.t;
}

type t = {
  shards : shard array; (* power-of-two length *)
  mask : int;
  c : Counters.t;
  persist : Omni_persist.Store.t option;
      (* write-behind: fresh admissions are journaled to disk under the
         shard lock, so the on-disk order is an admission order *)
}

let default_shards = 8

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?counters ?persist ?(shards = default_shards) () =
  let c = match counters with Some c -> c | None -> Counters.create () in
  let n = pow2_at_least (max 1 shards) in
  { shards = Array.init n (fun _ ->
        { mu = Mutex.create (); tbl = Hashtbl.create 16;
          ptbl = Hashtbl.create 16 });
    mask = n - 1; c; persist }

let shard t (d : Fnv64.t) = t.shards.(Int64.to_int d land t.mask)

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

exception Collision of handle
exception Unknown_handle

(* The shard lock is held across decode + blueprint so that concurrent
   submits of the same new module stay exactly accounted: one of them
   inserts (counting [modules] and [bytes_stored] once), every other
   counts [dedup_hits]. Cold submits of same-shard modules serialize;
   distinct shards proceed in parallel. *)
let submit ?producer t bytes =
  let h = Fnv64.digest_string bytes in
  Metrics.incr t.c.Counters.submits;
  let s = shard t h in
  ( locked s.mu @@ fun () ->
    match Hashtbl.find_opt s.tbl h with
    | Some e ->
        if not (String.equal e.e_bytes bytes) then raise (Collision h);
        Metrics.incr t.c.Counters.dedup_hits;
        Trace.count "store.dedup_hits"
    | None ->
        let exe =
          Trace.phase "decode"
            ~attrs:[ ("bytes", string_of_int (String.length bytes)) ]
            (fun () -> Omnivm.Wire.decode bytes)
        in
        let bp = Omni_runtime.Loader.blueprint exe in
        Hashtbl.replace s.tbl h
          { e_bytes = bytes; e_exe = exe; e_blueprint = bp;
            e_producer = producer };
        Metrics.incr t.c.Counters.modules;
        Metrics.incr ~by:(String.length bytes) t.c.Counters.bytes_stored;
        (match t.persist with
        | Some p -> Omni_persist.Store.append_module p bytes
        | None -> ()) );
  h

(* Recovery re-admission: the bytes come from the persistent store's
   validated replay, so they count as modules held ([modules],
   [bytes_stored]) but not as client traffic ([submits], [dedup_hits])
   — and they are never re-journaled. *)
let restore t bytes =
  let h = Fnv64.digest_string bytes in
  let s = shard t h in
  ( locked s.mu @@ fun () ->
    match Hashtbl.find_opt s.tbl h with
    | Some _ -> ()
    | None ->
        let exe = Omnivm.Wire.decode bytes in
        let bp = Omni_runtime.Loader.blueprint exe in
        Hashtbl.replace s.tbl h
          { e_bytes = bytes; e_exe = exe; e_blueprint = bp;
            e_producer = None };
        Metrics.incr t.c.Counters.modules;
        Metrics.incr ~by:(String.length bytes) t.c.Counters.bytes_stored );
  h

let entry t h =
  let s = shard t h in
  match locked s.mu (fun () -> Hashtbl.find_opt s.tbl h) with
  | Some e -> e
  | None -> raise Unknown_handle

(* The shard lock is held across the compile (pure, like the decoder in
   [submit]) so the hit/miss accounting is exact under concurrency: the
   first fast run of a digest counts one miss and compiles; every other
   run — including ones racing the first — counts a hit and shares the
   same program. *)
let predecoded t h =
  let s = shard t h in
  locked s.mu @@ fun () ->
  match Hashtbl.find_opt s.ptbl h with
  | Some p ->
      Metrics.incr t.c.Counters.predecode_hits;
      Trace.count "vm.predecode.hit";
      p
  | None -> (
      match Hashtbl.find_opt s.tbl h with
      | None -> raise Unknown_handle
      | Some e ->
          Metrics.incr t.c.Counters.predecode_misses;
          Trace.count "vm.predecode.miss";
          let p =
            Trace.phase "predecode" (fun () ->
                Omnivm.Fastinterp.compile e.e_exe.Omnivm.Exe.text)
          in
          Hashtbl.replace s.ptbl h p;
          p)

let bytes t h = (entry t h).e_bytes
let exe t h = (entry t h).e_exe
let blueprint t h = (entry t h).e_blueprint
let producer t h = (entry t h).e_producer

let modules t =
  Array.fold_left
    (fun acc s -> acc + locked s.mu (fun () -> Hashtbl.length s.tbl))
    0 t.shards
