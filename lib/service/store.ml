module Fnv64 = Omni_util.Fnv64
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

type handle = Fnv64.t

let digest h = h
let digest_hex = Fnv64.to_hex
let equal_handle = Fnv64.equal

type entry = {
  e_bytes : string;
  e_exe : Omnivm.Exe.t;
  e_blueprint : Omni_runtime.Loader.blueprint;
}

type t = {
  tbl : (Fnv64.t, entry) Hashtbl.t;
  c : Counters.t;
}

let create ?counters () =
  let c = match counters with Some c -> c | None -> Counters.create () in
  { tbl = Hashtbl.create 64; c }

exception Collision of handle
exception Unknown_handle

let submit t bytes =
  let h = Fnv64.digest_string bytes in
  Metrics.incr t.c.Counters.submits;
  (match Hashtbl.find_opt t.tbl h with
  | Some e ->
      if not (String.equal e.e_bytes bytes) then raise (Collision h);
      Metrics.incr t.c.Counters.dedup_hits;
      Trace.count "store.dedup_hits"
  | None ->
      let exe =
        Trace.phase "decode"
          ~attrs:[ ("bytes", string_of_int (String.length bytes)) ]
          (fun () -> Omnivm.Wire.decode bytes)
      in
      let bp = Omni_runtime.Loader.blueprint exe in
      Hashtbl.replace t.tbl h
        { e_bytes = bytes; e_exe = exe; e_blueprint = bp };
      Metrics.incr t.c.Counters.modules;
      Metrics.incr ~by:(String.length bytes) t.c.Counters.bytes_stored);
  h

let entry t h =
  match Hashtbl.find_opt t.tbl h with
  | Some e -> e
  | None -> raise Unknown_handle

let bytes t h = (entry t h).e_bytes
let exe t h = (entry t h).e_exe
let blueprint t h = (entry t h).e_blueprint
let modules t = Hashtbl.length t.tbl
