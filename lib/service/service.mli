(** The serving front-end: many loads of few modules, translated once.

    Ties the content-addressed {!Store} and the memoizing translation
    {!Cache} behind a two-call protocol:

    + {!submit} admits wire bytes (validated, deduplicated) and returns a
      content-derived handle;
    + {!instantiate} stamps out a fresh isolated image for the handle and
      runs it on the requested engine, reusing the cached translation for
      its (arch, mode, opts) configuration when one exists.

    Every layer reports into one {!Counters.t} set of instruments
    (snapshot via {!stats}), and
    {!run_batch} drives a request mix end to end, reporting throughput —
    the serving analogue of the paper's "translation must be fast"
    load-time argument: a production host pays the translator once per
    configuration, not once per load.

    {b Concurrency}: one [t] is safe to share across domains. The store
    and cache are sharded by module digest behind per-shard mutexes,
    counters are atomic, and the quarantine serializes behind its own
    lock, so {!submit} / {!instantiate} from a server's worker pool need
    no external locking and lose no counter updates. [on_crash] may be
    invoked concurrently and must be thread-safe itself. *)

module Machine = Omni_targets.Machine

type t

(** Everything that shapes a service, as one documented record — build
    one with [{ default_config with ... }]. *)
type config = {
  cache_capacity : int;
      (** translation-cache bound (default 256 configurations; 0
          disables caching — every target run translates) *)
  shards : int;
      (** digest-shard count for store and cache (default 8, rounded up
          to a power of two); more shards, less same-shard contention *)
  quarantine : Supervise.Quarantine.config option;
      (** per-digest circuit breaker ({!Supervise.Quarantine}); [None]
          (default) disables it *)
  deadline_s : float option;
      (** wall-clock budget per run, overridable per call *)
  watchdog_poll : int option;  (** deadline poll interval, instructions *)
  on_crash : (Supervise.report -> unit) option;
      (** invoked (possibly concurrently) for every faulted run *)
  persist : Omni_persist.Io.t option;
      (** filesystem for the journaled on-disk store
          ({!Omni_persist.Store}); [None] (default) keeps everything
          in memory. Opening the service runs total recovery over it
          (see {!recovery}); pair with {!close} for the clean-shutdown
          fast path. *)
}

val default_config : config

val of_config : ?metrics:Omni_obs.Metrics.t -> ?clock:Omni_util.Clock.t ->
  config -> t
(** The one constructor. [metrics] is the registry the service's
    counters are registered in (default: a fresh one) — pass the
    registry of a {!Omni_obs.Trace} tracer to land serving counters and
    per-phase timings in one place. [clock] (default real wall time)
    drives watchdog deadlines; both are capabilities rather than
    configuration, hence not in {!config}. *)

val create :
  ?cache_capacity:int ->
  ?metrics:Omni_obs.Metrics.t ->
  ?quarantine:Supervise.Quarantine.config ->
  ?deadline_s:float ->
  ?watchdog_poll:int ->
  ?clock:Omni_util.Clock.t ->
  ?on_crash:(Supervise.report -> unit) ->
  unit ->
  t
(** (deprecated) The pre-{!config} entry point, now a thin wrapper over
    {!of_config} with each option mapping to the config field of the
    same name. Kept so existing callers and tests build unchanged;
    prefer {!of_config} in new code. *)

val metrics : t -> Omni_obs.Metrics.t
(** The backing metrics registry (serving counters + anything else
    registered in it). *)

val recovery : t -> Omni_persist.Store.recovered option
(** What opening the persistent store recovered (validated modules and
    translations re-admitted, quarantined records, torn tails); [None]
    when the service has no persistence configured. *)

val close : t -> unit
(** Flush the journal and commit the clean-shutdown marker, so the next
    open takes the fast recovery path. No-op without persistence; call
    after the last submit/instantiate (further persisted admissions
    raise). *)

val submit : ?producer:string -> t -> string -> Store.handle
(** Admit module bytes; see {!Store.submit} for validation, errors, and
    the [producer] attribution (which flows into crash reports). *)

val instantiate :
  ?engine:Exec.engine ->
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  ?fuel:int ->
  ?deadline_s:float ->
  t ->
  Store.handle ->
  Exec.run_result
(** Run the module named by the handle on a fresh isolated image.
    Defaults mirror [Api.run_exe]: the interpreter engine; for target
    engines, sandboxed mobile code ([sfi], default true, ignored when
    [mode] is given) with the per-arch translator options. [deadline_s]
    overrides the service-wide wall-clock budget for this run.
    @raise Store.Unknown_handle on a foreign handle.
    @raise Cache.Rejected if the SFI verifier rejects the translation.
    @raise Supervise.Quarantine.Quarantined when the module's breaker is
    tripped — refused before any translation or instantiation work. *)

val clear_quarantine : t -> Omni_util.Fnv64.t -> bool
(** Manually lift a digest's quarantine; counted in
    [service.quarantine.cleared]. [false] when the digest was not
    quarantined (or no quarantine is configured). *)

val quarantined : t -> (Omni_util.Fnv64.t * float) list
(** Currently-quarantined digests with expiry times (empty when no
    quarantine is configured). *)

val cached :
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  arch:Omni_targets.Arch.t ->
  t ->
  Store.handle ->
  Cache.entry option
(** The cached translation {!instantiate} would reuse for this handle and
    configuration, if present; does not perturb recency order. *)

val certificate :
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  arch:Omni_targets.Arch.t ->
  t ->
  Store.handle ->
  Omni_cert.Certificate.t option
(** The safety witness stored beside the cached translation (see
    {!Exec.certify}); [None] when nothing is cached or the entry carries
    no certificate. Does not perturb recency order. *)

val stats : t -> Counters.snapshot
(** An immutable reading of the shared counters — see
    {!Counters.snapshot}, {!Counters.pp}, {!Counters.to_json}. *)

val render_stats : t -> string

(** One request of a batch: which module, which engine, SFI on/off. *)
type request = {
  rq_handle : Store.handle;
  rq_engine : Exec.engine;
  rq_sfi : bool;
}

type batch_report = {
  br_requests : int;
  br_failures : int;  (** requests that did not exit 0 *)
  br_instructions : int;  (** total simulated instructions retired *)
  br_elapsed_s : float;  (** CPU seconds for the whole batch *)
  br_rps : float;  (** requests per CPU second *)
}

val run_batch : ?fuel:int -> t -> request array -> batch_report
val render_batch : batch_report -> string
