(** The serving front-end: many loads of few modules, translated once.

    Ties the content-addressed {!Store} and the memoizing translation
    {!Cache} behind a two-call protocol:

    + {!submit} admits wire bytes (validated, deduplicated) and returns a
      content-derived handle;
    + {!instantiate} stamps out a fresh isolated image for the handle and
      runs it on the requested engine, reusing the cached translation for
      its (arch, mode, opts) configuration when one exists.

    Every layer reports into one {!Counters.t} set of instruments
    (snapshot via {!stats}), and
    {!run_batch} drives a request mix end to end, reporting throughput —
    the serving analogue of the paper's "translation must be fast"
    load-time argument: a production host pays the translator once per
    configuration, not once per load. *)

module Machine = Omni_targets.Machine

type t

val create :
  ?cache_capacity:int ->
  ?metrics:Omni_obs.Metrics.t ->
  ?quarantine:Supervise.Quarantine.config ->
  ?deadline_s:float ->
  ?watchdog_poll:int ->
  ?clock:Omni_util.Clock.t ->
  ?on_crash:(Supervise.report -> unit) ->
  unit ->
  t
(** [cache_capacity] bounds the translation cache (default 256 entries;
    0 disables translation caching — every target run translates).
    [metrics] is the registry the service's counters are registered in
    (default: a fresh one) — pass the registry of a {!Omni_obs.Trace}
    tracer to land serving counters and per-phase timings in one place.

    Supervision (all off by default, preserving prior behaviour):
    [quarantine] enables the per-digest circuit breaker
    ({!Supervise.Quarantine}); [deadline_s] imposes a wall-clock budget on
    every run (overridable per call), polled every [watchdog_poll]
    instructions and read from [clock] (default real wall time);
    [on_crash] is invoked with a full {!Supervise.report} for every
    faulted run. *)

val metrics : t -> Omni_obs.Metrics.t
(** The backing metrics registry (serving counters + anything else
    registered in it). *)

val submit : t -> string -> Store.handle
(** Admit module bytes; see {!Store.submit} for validation and errors. *)

val instantiate :
  ?engine:Exec.engine ->
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  ?fuel:int ->
  ?deadline_s:float ->
  t ->
  Store.handle ->
  Exec.run_result
(** Run the module named by the handle on a fresh isolated image.
    Defaults mirror [Api.run_exe]: the interpreter engine; for target
    engines, sandboxed mobile code ([sfi], default true, ignored when
    [mode] is given) with the per-arch translator options. [deadline_s]
    overrides the service-wide wall-clock budget for this run.
    @raise Store.Unknown_handle on a foreign handle.
    @raise Cache.Rejected if the SFI verifier rejects the translation.
    @raise Supervise.Quarantine.Quarantined when the module's breaker is
    tripped — refused before any translation or instantiation work. *)

val clear_quarantine : t -> Omni_util.Fnv64.t -> bool
(** Manually lift a digest's quarantine; counted in
    [service.quarantine.cleared]. [false] when the digest was not
    quarantined (or no quarantine is configured). *)

val quarantined : t -> (Omni_util.Fnv64.t * float) list
(** Currently-quarantined digests with expiry times (empty when no
    quarantine is configured). *)

val cached :
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  arch:Omni_targets.Arch.t ->
  t ->
  Store.handle ->
  Cache.entry option
(** The cached translation {!instantiate} would reuse for this handle and
    configuration, if present; does not perturb recency order. *)

val certificate :
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  arch:Omni_targets.Arch.t ->
  t ->
  Store.handle ->
  Omni_cert.Certificate.t option
(** The safety witness stored beside the cached translation (see
    {!Exec.certify}); [None] when nothing is cached or the entry carries
    no certificate. Does not perturb recency order. *)

val stats : t -> Counters.snapshot
(** An immutable reading of the shared counters — see
    {!Counters.snapshot}, {!Counters.pp}, {!Counters.to_json}. *)

val render_stats : t -> string

(** One request of a batch: which module, which engine, SFI on/off. *)
type request = {
  rq_handle : Store.handle;
  rq_engine : Exec.engine;
  rq_sfi : bool;
}

type batch_report = {
  br_requests : int;
  br_failures : int;  (** requests that did not exit 0 *)
  br_instructions : int;  (** total simulated instructions retired *)
  br_elapsed_s : float;  (** CPU seconds for the whole batch *)
  br_rps : float;  (** requests per CPU second *)
}

val run_batch : ?fuel:int -> t -> request array -> batch_report
val render_batch : batch_report -> string
