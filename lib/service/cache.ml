module Machine = Omni_targets.Machine
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

(* The key embeds every input of the (pure) translator: module identity by
   content digest, target architecture, translation mode (including the
   full SFI policy), and translator options. All components are pure data,
   as Lru's polymorphic hashing requires. *)
type key = {
  k_digest : Omni_util.Fnv64.t;
  k_arch : Omni_targets.Arch.t;
  k_mode : Machine.mode;
  k_opts : Machine.topts;
}

let key ~digest ~arch ~mode ~opts =
  { k_digest = digest; k_arch = arch; k_mode = mode; k_opts = opts }

type verdict = Verified | Not_applicable

type entry = {
  tr : Exec.translated;
  verdict : verdict;
  fp : Omni_util.Fnv64.t;
  cert : Omni_cert.Certificate.t option;
      (* the safety witness minted at admission; present iff Verified *)
}

exception Rejected of string

type t = {
  lru : (key, entry) Lru.t;
  c : Counters.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) c =
  { lru = Lru.create ~capacity; c }

let capacity t = Lru.capacity t.lru
let length t = Lru.length t.lru

(* The admission check: sandboxed code must pass the static SFI verifier
   before it may run, whether freshly translated or pulled from the cache.
   Guard-mode and unprotected translations carry no Wahbe-style masking
   sequences, so the verifier does not apply to them. *)
let verdict_applicable (k : key) =
  match k.k_mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.mode = Omni_sfi.Policy.Sandbox
  | Machine.Native _ -> false

(* Fresh admission (misses): run the certifying verifier, which both
   performs the full static check and mints the witness that makes every
   later warm admission cheap. *)
let admit t k tr =
  if verdict_applicable k then begin
    Metrics.incr t.c.Counters.verifications;
    match
      Exec.certify ~module_digest:k.k_digest ~mode:k.k_mode ~opts:k.k_opts tr
    with
    | Ok cert -> (Verified, Some cert)
    | Error reason -> raise (Rejected reason)
  end
  else (Not_applicable, None)

(* Warm admission (hits): the stored witness replaces the full re-verify.
   An entry without a witness (it was cached as Not_applicable but the key
   demands verification — impossible today, kept as a safety net) falls
   back to the full verifier, observable as [cache.cert.full_verify].

   A failed warm admission previously looked like nothing at all in the
   counters (neither hit nor miss — the Rejected raise skipped both): it
   is now counted as [cache.verify_fail] before the raise. *)
let readmit t (k : key) (e : entry) =
  if verdict_applicable k then begin
    let result =
      match e.cert with
      | Some cert ->
          Metrics.incr t.c.Counters.cert_checks;
          Trace.count "cache.cert.check";
          Exec.check_cert ~module_digest:k.k_digest ~mode:k.k_mode
            ~opts:k.k_opts ~code_fp:e.fp cert e.tr
      | None ->
          Metrics.incr t.c.Counters.cert_full_verify;
          Metrics.incr t.c.Counters.verifications;
          Trace.count "cache.cert.full_verify";
          Exec.verify e.tr
    in
    match result with
    | Ok () -> ()
    | Error reason ->
        Metrics.incr t.c.Counters.verify_fail;
        Trace.count "cache.verify_fail";
        raise (Rejected reason)
  end

let find_or_translate t (k : key) (exe : Omnivm.Exe.t) : Exec.translated =
  let t0 = Sys.time () in
  match Lru.find t.lru k with
  | Some e ->
      readmit t k e;
      Metrics.incr t.c.Counters.hits;
      Trace.count "cache.hits";
      Metrics.observe t.c.Counters.warm_admit (Sys.time () -. t0);
      e.tr
  | None ->
      let tr = Exec.translate ~mode:k.k_mode ~opts:k.k_opts k.k_arch exe in
      Metrics.incr t.c.Counters.translations;
      let verdict, cert = admit t k tr in
      (match
         Lru.add t.lru k { tr; verdict; fp = Exec.fingerprint tr; cert }
       with
      | Some _ -> Metrics.incr t.c.Counters.evictions
      | None -> ());
      Metrics.incr t.c.Counters.misses;
      Trace.count "cache.misses";
      Metrics.observe t.c.Counters.cold_translate (Sys.time () -. t0);
      tr

let peek t k = Lru.peek t.lru k

(* Test hook: the mli's invariant says a corrupted cache cannot reach a
   simulator; tests corrupt an entry with this and watch the warm
   admission refuse it. *)
let inject t k e = ignore (Lru.add t.lru k e)
