module Machine = Omni_targets.Machine
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

(* The key embeds every input of the (pure) translator: module identity by
   content digest, target architecture, translation mode (including the
   full SFI policy), and translator options. All components are pure data,
   as Lru's polymorphic hashing requires. *)
type key = {
  k_digest : Omni_util.Fnv64.t;
  k_arch : Omni_targets.Arch.t;
  k_mode : Machine.mode;
  k_opts : Machine.topts;
}

let key ~digest ~arch ~mode ~opts =
  { k_digest = digest; k_arch = arch; k_mode = mode; k_opts = opts }

type verdict = Verified | Not_applicable

type entry = {
  tr : Exec.translated;
  verdict : verdict;
  fp : Omni_util.Fnv64.t;
}

exception Rejected of string

type t = {
  lru : (key, entry) Lru.t;
  c : Counters.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) c =
  { lru = Lru.create ~capacity; c }

let capacity t = Lru.capacity t.lru
let length t = Lru.length t.lru

(* The admission check: sandboxed code must pass the static SFI verifier
   before it may run, whether freshly translated or pulled from the cache.
   Guard-mode and unprotected translations carry no Wahbe-style masking
   sequences, so the verifier does not apply to them. *)
let verdict_applicable (k : key) =
  match k.k_mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.mode = Omni_sfi.Policy.Sandbox
  | Machine.Native _ -> false

let admit t k tr =
  if verdict_applicable k then begin
    Metrics.incr t.c.Counters.verifications;
    match Exec.verify tr with
    | Ok () -> Verified
    | Error reason -> raise (Rejected reason)
  end
  else Not_applicable

let find_or_translate t (k : key) (exe : Omnivm.Exe.t) : Exec.translated =
  let t0 = Sys.time () in
  match Lru.find t.lru k with
  | Some e ->
      let (_ : verdict) = admit t k e.tr in
      Metrics.incr t.c.Counters.hits;
      Trace.count "cache.hits";
      Metrics.observe t.c.Counters.warm_admit (Sys.time () -. t0);
      e.tr
  | None ->
      let tr = Exec.translate ~mode:k.k_mode ~opts:k.k_opts k.k_arch exe in
      Metrics.incr t.c.Counters.translations;
      let verdict = admit t k tr in
      (match Lru.add t.lru k { tr; verdict; fp = Exec.fingerprint tr } with
      | Some _ -> Metrics.incr t.c.Counters.evictions
      | None -> ());
      Metrics.incr t.c.Counters.misses;
      Trace.count "cache.misses";
      Metrics.observe t.c.Counters.cold_translate (Sys.time () -. t0);
      tr

let peek t k = Lru.peek t.lru k
