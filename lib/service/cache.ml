module Machine = Omni_targets.Machine
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

(* The key embeds every input of the (pure) translator: module identity by
   content digest, target architecture, translation mode (including the
   full SFI policy), and translator options. All components are pure data,
   as Lru's polymorphic hashing requires. *)
type key = {
  k_digest : Omni_util.Fnv64.t;
  k_arch : Omni_targets.Arch.t;
  k_mode : Machine.mode;
  k_opts : Machine.topts;
}

let key ~digest ~arch ~mode ~opts =
  { k_digest = digest; k_arch = arch; k_mode = mode; k_opts = opts }

type verdict = Verified | Not_applicable

type entry = {
  tr : Exec.translated;
  verdict : verdict;
  fp : Omni_util.Fnv64.t;
  cert : Omni_cert.Certificate.t option;
      (* the safety witness minted at admission; present iff Verified *)
}

exception Rejected of string

(* Sharded by module digest: every configuration of one module lands in
   one shard (so a small capacity still evicts among them, as the
   single-LRU cache did), while distinct modules spread across shards and
   never contend. An entry is immutable once inserted — the warm-path
   admission check runs on it after the shard lock is dropped. Shard
   locks are leaf-level; a cold miss holds its shard's lock across
   translate + certify, which serializes same-shard cold misses and in
   return makes the counters exact: one miss and one translation per
   distinct configuration, everything else a hit. *)
type shard = { mu : Mutex.t; lru : (key, entry) Lru.t }

type t = {
  shards : shard array; (* power-of-two length *)
  mask : int;
  c : Counters.t;
  persist : Omni_persist.Store.t option;
      (* write-behind: certified cold translations are journaled under
         the shard lock; entries without a witness are not persisted
         (recovery could not re-prove them) *)
}

let default_capacity = 256
let default_shards = 8

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let tprog_of_translated = function
  | Exec.T_risc p -> Omni_persist.Store.P_risc p
  | Exec.T_x86 p -> Omni_persist.Store.P_x86 p

let translated_of_tprog = function
  | Omni_persist.Store.P_risc p -> Exec.T_risc p
  | Omni_persist.Store.P_x86 p -> Exec.T_x86 p

let create ?(capacity = default_capacity) ?persist ?(shards = default_shards)
    c =
  let n = pow2_at_least (max 1 shards) in
  (* capacity 0 disables caching entirely; otherwise each shard gets an
     equal slice, at least 1, so total capacity rounds up to a multiple
     of the shard count *)
  let per_shard = if capacity <= 0 then 0 else max 1 ((capacity + n - 1) / n) in
  { shards = Array.init n (fun _ ->
        { mu = Mutex.create (); lru = Lru.create ~capacity:per_shard });
    mask = n - 1; c; persist }

let shard t (k : key) = t.shards.(Int64.to_int k.k_digest land t.mask)

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let capacity t =
  Array.fold_left (fun acc s -> acc + Lru.capacity s.lru) 0 t.shards

let length t =
  Array.fold_left
    (fun acc s -> acc + locked s.mu (fun () -> Lru.length s.lru))
    0 t.shards

(* The admission check: sandboxed code must pass the static SFI verifier
   before it may run, whether freshly translated or pulled from the cache.
   Guard-mode and unprotected translations carry no Wahbe-style masking
   sequences, so the verifier does not apply to them. *)
let verdict_applicable (k : key) =
  match k.k_mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.mode = Omni_sfi.Policy.Sandbox
  | Machine.Native _ -> false

(* Fresh admission (misses): run the certifying verifier, which both
   performs the full static check and mints the witness that makes every
   later warm admission cheap. *)
let admit t k tr =
  if verdict_applicable k then begin
    Metrics.incr t.c.Counters.verifications;
    match
      Exec.certify ~module_digest:k.k_digest ~mode:k.k_mode ~opts:k.k_opts tr
    with
    | Ok cert -> (Verified, Some cert)
    | Error reason -> raise (Rejected reason)
  end
  else (Not_applicable, None)

(* Warm admission (hits): the stored witness replaces the full re-verify.
   An entry without a witness (it was cached as Not_applicable but the key
   demands verification — impossible today, kept as a safety net) falls
   back to the full verifier, observable as [cache.cert.full_verify].

   A failed warm admission previously looked like nothing at all in the
   counters (neither hit nor miss — the Rejected raise skipped both): it
   is now counted as [cache.verify_fail] before the raise. *)
let readmit t (k : key) (e : entry) =
  if verdict_applicable k then begin
    let result =
      match e.cert with
      | Some cert ->
          Metrics.incr t.c.Counters.cert_checks;
          Trace.count "cache.cert.check";
          Exec.check_cert ~module_digest:k.k_digest ~mode:k.k_mode
            ~opts:k.k_opts ~code_fp:e.fp cert e.tr
      | None ->
          Metrics.incr t.c.Counters.cert_full_verify;
          Metrics.incr t.c.Counters.verifications;
          Trace.count "cache.cert.full_verify";
          Exec.verify e.tr
    in
    match result with
    | Ok () -> ()
    | Error reason ->
        Metrics.incr t.c.Counters.verify_fail;
        Trace.count "cache.verify_fail";
        raise (Rejected reason)
  end

(* Warm path: the entry is immutable, so the witness check runs outside
   any lock. *)
let hit t k (e : entry) t0 =
  readmit t k e;
  Metrics.incr t.c.Counters.hits;
  Trace.count "cache.hits";
  Metrics.observe t.c.Counters.warm_admit (Sys.time () -. t0);
  e.tr

let find_or_translate t (k : key) (exe : Omnivm.Exe.t) : Exec.translated =
  let t0 = Sys.time () in
  let s = shard t k in
  match locked s.mu (fun () -> Lru.find s.lru k) with
  | Some e -> hit t k e t0
  | None -> (
      (* Re-check under the lock: another domain may have filled the
         entry since the probe above. The loser of that race counts a
         hit, keeping misses == distinct configurations. *)
      let filled =
        locked s.mu @@ fun () ->
        match Lru.find s.lru k with
        | Some e -> Either.Left e
        | None ->
            let tr =
              Exec.translate ~mode:k.k_mode ~opts:k.k_opts k.k_arch exe
            in
            Metrics.incr t.c.Counters.translations;
            let verdict, cert = admit t k tr in
            (match
               Lru.add s.lru k { tr; verdict; fp = Exec.fingerprint tr; cert }
             with
            | Some _ -> Metrics.incr t.c.Counters.evictions
            | None -> ());
            (match (t.persist, cert) with
            | Some p, Some cert ->
                Omni_persist.Store.append_translation p
                  ~module_digest:k.k_digest ~mode:k.k_mode ~opts:k.k_opts
                  ~cert (tprog_of_translated tr)
            | _ -> ());
            Metrics.incr t.c.Counters.misses;
            Trace.count "cache.misses";
            Either.Right tr
      in
      match filled with
      | Either.Left e -> hit t k e t0
      | Either.Right tr ->
          Metrics.observe t.c.Counters.cold_translate (Sys.time () -. t0);
          tr)

let peek t k =
  let s = shard t k in
  locked s.mu (fun () -> Lru.peek s.lru k)

(* Recovery re-admission: the translation was proven at replay (witness
   re-checked against the recomputed module digest), so it enters as
   Verified with its certificate — every later warm hit still re-checks
   the witness in [readmit], exactly like an entry the live path minted.
   Counts no miss and no translation (no translator ran) and is never
   re-journaled. *)
let restore t (rt : Omni_persist.Store.rtrans) =
  let tr = translated_of_tprog rt.Omni_persist.Store.rt_prog in
  let k =
    {
      k_digest = rt.Omni_persist.Store.rt_module;
      k_arch = Exec.arch_of tr;
      k_mode = rt.Omni_persist.Store.rt_mode;
      k_opts = rt.Omni_persist.Store.rt_opts;
    }
  in
  let e =
    {
      tr;
      verdict = Verified;
      fp = rt.Omni_persist.Store.rt_fp;
      cert = Some rt.Omni_persist.Store.rt_cert;
    }
  in
  let s = shard t k in
  locked s.mu @@ fun () ->
  match Lru.find s.lru k with
  | Some _ -> ()
  | None -> (
      match Lru.add s.lru k e with
      | Some _ -> Metrics.incr t.c.Counters.evictions
      | None -> ())

(* Test hook: the mli's invariant says a corrupted cache cannot reach a
   simulator; tests corrupt an entry with this and watch the warm
   admission refuse it. *)
let inject t k e =
  let s = shard t k in
  locked s.mu (fun () -> ignore (Lru.add s.lru k e))
