module Machine = Omni_targets.Machine
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

type config = {
  cache_capacity : int;
  shards : int;
  quarantine : Supervise.Quarantine.config option;
  deadline_s : float option;
  watchdog_poll : int option;
  on_crash : (Supervise.report -> unit) option;
  persist : Omni_persist.Io.t option;
}

let default_config =
  {
    cache_capacity = 256;
    shards = 8;
    quarantine = None;
    deadline_s = None;
    watchdog_poll = None;
    on_crash = None;
    persist = None;
  }

type t = {
  store : Store.t;
  cache : Cache.t;
  c : Counters.t;
  quarantine : Supervise.Quarantine.t option;
  deadline_s : float option; (* default wall-clock budget per run *)
  watchdog_poll : int option;
  clock : Omni_util.Clock.t; (* drives watchdog deadlines *)
  on_crash : (Supervise.report -> unit) option;
  persist : Omni_persist.Store.t option;
  recovery : Omni_persist.Store.recovered option;
}

let of_config ?metrics ?(clock = Supervise.wall_clock) (cfg : config) =
  let c = Counters.create ?metrics () in
  (* Open the journal (running total recovery) before the in-memory
     layers exist, then replay the proven survivors into them through
     the restore paths — which count no client traffic and never
     re-journal. Modules go first: translations reference them. *)
  let persist, recovery =
    match cfg.persist with
    | None -> (None, None)
    | Some io ->
        let p, r = Omni_persist.Store.open_ ~metrics:(Counters.metrics c) io in
        (Some p, Some r)
  in
  let store = Store.create ~counters:c ?persist ~shards:cfg.shards () in
  let cache =
    Cache.create ~capacity:cfg.cache_capacity ?persist ~shards:cfg.shards c
  in
  (match recovery with
  | None -> ()
  | Some r ->
      List.iter
        (fun bytes -> ignore (Store.restore store bytes))
        r.Omni_persist.Store.r_modules;
      List.iter (Cache.restore cache) r.Omni_persist.Store.r_translations);
  {
    store;
    cache;
    c;
    quarantine = Option.map Supervise.Quarantine.create cfg.quarantine;
    deadline_s = cfg.deadline_s;
    watchdog_poll = cfg.watchdog_poll;
    clock;
    on_crash = cfg.on_crash;
    persist;
    recovery;
  }

let recovery t = t.recovery

let close t =
  match t.persist with
  | None -> ()
  | Some p ->
      Omni_persist.Store.flush p;
      Omni_persist.Store.close p

(* Pre-config entry point, kept as a thin wrapper over [of_config]. *)
let create ?cache_capacity ?metrics ?quarantine ?deadline_s ?watchdog_poll
    ?(clock = Supervise.wall_clock) ?on_crash () =
  of_config ?metrics ~clock
    {
      default_config with
      cache_capacity =
        Option.value cache_capacity ~default:default_config.cache_capacity;
      quarantine;
      deadline_s;
      watchdog_poll;
      on_crash;
    }

let submit ?producer t bytes = Store.submit ?producer t.store bytes
let metrics t = Counters.metrics t.c

let clear_quarantine t digest =
  match t.quarantine with
  | None -> false
  | Some q ->
      let cleared = Supervise.Quarantine.clear q digest in
      if cleared then Metrics.incr t.c.Counters.quarantine_cleared;
      cleared

let quarantined t =
  match t.quarantine with
  | None -> []
  | Some q -> Supervise.Quarantine.active q

(* Resolve the translation configuration exactly as Api.run does, so a
   service run and a direct run of the same request are the same
   computation — the observational-identity tests rely on this. *)
let resolve_config ?sfi ?mode ?opts arch =
  let mode =
    match mode with
    | Some m -> m
    | None ->
        if Option.value sfi ~default:true then
          Machine.Mobile (Omni_sfi.Policy.make ())
        else Machine.Mobile Omni_sfi.Policy.off
  in
  let opts = match opts with Some o -> o | None -> Exec.mobile_opts arch in
  (mode, opts)

(* Post-run supervision: count and report the crash, feed the quarantine.
   The quarantine is fed every outcome (clean exits reset strikes); the
   crash report is only materialized when someone will read it. *)
let supervise_result t h ~engine ~sfi ?fuel (res : Exec.run_result) =
  let digest = Store.digest h in
  (match res.Exec.outcome with
  | Machine.Faulted f ->
      Metrics.incr t.c.Counters.crash_reports;
      if f = Omnivm.Fault.Deadline_exceeded then
        Metrics.incr t.c.Counters.deadline_exceeded;
      (match t.on_crash with
      | None -> ()
      | Some k -> (
          match
            Supervise.of_run ~engine ~sfi
              ?producer:(Store.producer t.store h)
              ?fuel ~wire:(Store.bytes t.store h) res
          with
          | Some report -> k report
          | None -> ()))
  | Machine.Exited _ | Machine.Out_of_fuel -> ());
  (match t.quarantine with
  | None -> ()
  | Some q ->
      if Supervise.Quarantine.note q digest res.Exec.outcome then
        Metrics.incr t.c.Counters.quarantine_trips);
  res

let instantiate ?(engine = Exec.Interp) ?(sfi = true) ?mode ?opts ?fuel
    ?deadline_s t h =
  (* Gate on the quarantine before any translation or instantiation work:
     a refused request must cost nothing but this table lookup. *)
  (match t.quarantine with
  | None -> ()
  | Some q -> (
      try Supervise.Quarantine.check q (Store.digest h)
      with Supervise.Quarantine.Quarantined _ as e ->
        Metrics.incr t.c.Counters.quarantine_refused;
        raise e));
  let watchdog =
    match (deadline_s, t.deadline_s) with
    | None, None -> None
    | Some b, _ | None, Some b ->
        Some
          (Omnivm.Watchdog.make ?poll_every:t.watchdog_poll ~clock:t.clock
             ~budget_s:b ())
  in
  let img = Omni_runtime.Loader.instantiate (Store.blueprint t.store h) in
  Metrics.incr t.c.Counters.instantiations;
  let res =
    match engine with
    | Exec.Interp -> Exec.run_interp ?fuel ?watchdog img
    | Exec.Fast ->
        Exec.run_fast ?fuel ?watchdog
          ~program:(Store.predecoded t.store h)
          img
    | Exec.Target arch ->
        let mode, opts = resolve_config ~sfi ?mode ?opts arch in
        let key = Cache.key ~digest:(Store.digest h) ~arch ~mode ~opts in
        let tr = Cache.find_or_translate t.cache key (Store.exe t.store h) in
        Exec.run_translated ?fuel ?watchdog tr img
  in
  supervise_result t h ~engine ~sfi ?fuel res

let cached ?sfi ?mode ?opts ~arch t h =
  let mode, opts = resolve_config ?sfi ?mode ?opts arch in
  Cache.peek t.cache (Cache.key ~digest:(Store.digest h) ~arch ~mode ~opts)

let certificate ?sfi ?mode ?opts ~arch t h =
  match cached ?sfi ?mode ?opts ~arch t h with
  | Some e -> e.Cache.cert
  | None -> None

let stats t = Counters.snapshot t.c
let render_stats t = Counters.render (stats t)

type request = {
  rq_handle : Store.handle;
  rq_engine : Exec.engine;
  rq_sfi : bool;
}

type batch_report = {
  br_requests : int;
  br_failures : int;
  br_instructions : int;
  br_elapsed_s : float;
  br_rps : float;
}

let run_batch ?fuel t (reqs : request array) : batch_report =
  let t0 = Sys.time () in
  let failures = ref 0 in
  let instructions = ref 0 in
  Array.iter
    (fun r ->
      let res =
        instantiate ~engine:r.rq_engine ~sfi:r.rq_sfi ?fuel t r.rq_handle
      in
      if res.Exec.exit_code <> 0 then incr failures;
      instructions := !instructions + res.Exec.instructions)
    reqs;
  let dt = Sys.time () -. t0 in
  {
    br_requests = Array.length reqs;
    br_failures = !failures;
    br_instructions = !instructions;
    br_elapsed_s = dt;
    br_rps =
      (if dt > 0.0 then float_of_int (Array.length reqs) /. dt else 0.0);
  }

let render_batch r =
  Printf.sprintf
    "batch: %d requests (%d failed), %d simulated instructions, %.3fs CPU, \
     %.1f req/s\n"
    r.br_requests r.br_failures r.br_instructions r.br_elapsed_s r.br_rps
