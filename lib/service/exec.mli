(** Engine-agnostic load/translate/execute layer.

    This is the implementation behind the {!Omniware.Api} façade, housed
    here so the serving stack (store, translation cache, service) can
    drive translation and execution without depending on the façade. The
    façade re-exports these types with equations, so [Api.run_result] and
    [Exec.run_result] are the same type. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine

(** An execution engine: the OmniVM reference interpreter, the
    pre-decoded fast-path interpreter ({!Omnivm.Fastinterp}), or
    load-time translation to a simulated target processor. *)
type engine = Interp | Fast | Target of Arch.t

val engine_of_string : string -> (engine, string) result
(** Recognizes ["interp"], ["fast"], ["mips"], ["sparc"], ["ppc"],
    ["x86"]; the error message names the valid engines (for CLI error
    reporting). *)

val valid_engines : string
(** The recognized engine names, comma-separated (for error messages). *)

val engine_name : engine -> string

val mobile_opts : Arch.t -> Machine.topts
(** The per-architecture translator-optimization defaults the paper
    describes (section 4). *)

(** Machine state at the instant a fault aborted the run. [cs_regs] is
    always the sixteen OmniVM integer registers, read back through each
    engine's register mapping so reports are comparable across engines;
    [cs_pc] is an OmniVM code address on the interpreter and a native
    instruction index on the simulators. *)
type crash_site = {
  cs_pc : int;
  cs_regs : int array;  (** 16 *)
  cs_window_base : int;  (** address of [cs_window.[0]]; -1 if no window *)
  cs_window : string;
      (** raw bytes around the faulting address, clamped to its mapped
          region; empty for faults without an (in-bounds) address *)
}

(** Result of running a module. *)
type run_result = {
  output : string;  (** everything the module printed via host calls *)
  exit_code : int;  (** argument of the exit host call; -1 if it faulted *)
  outcome : Machine.outcome;
  instructions : int;  (** dynamic (native) instructions executed *)
  cycles : int;  (** simulated pipeline cycles (= instructions on interp) *)
  stats : Machine.stats option;  (** detailed statistics; None for interp *)
  crash : crash_site option;  (** [Some] iff [outcome] is [Faulted] *)
}

val load :
  ?map_host_region:bool ->
  ?allow:Omnivm.Hostcall.t list ->
  Omnivm.Exe.t ->
  Omni_runtime.Loader.image

val run_interp :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  Omni_runtime.Loader.image ->
  run_result

val run_fast :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  ?program:Omnivm.Fastinterp.program ->
  Omni_runtime.Loader.image ->
  run_result
(** Run under the pre-decoded threaded interpreter. Observably identical
    to {!run_interp} (same outcome, fault, output, instruction and fuel
    accounting); pass [program] to reuse a pre-compiled decode (see
    {!Omni_service.Store.predecoded}), otherwise the image's code is
    compiled on the spot. *)

(** A translated module, ready to execute on its target simulator. *)
type translated =
  | T_risc of Omni_targets.Risc.program
  | T_x86 of Omni_targets.X86.program

val translate :
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  Arch.t ->
  Omnivm.Exe.t ->
  translated
(** Load-time translation. [mode] defaults to sandboxed mobile code;
    [opts] defaults to {!mobile_opts}. *)

val run_translated :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  translated ->
  Omni_runtime.Loader.image ->
  run_result

val verify : ?mode:Machine.mode -> translated -> (unit, string) result
(** Run the target's static SFI verifier over the translated code — the
    cheap admission check a distrustful host applies before executing
    (and before reusing cached) sandboxed code. Pass the translation
    [mode] so the displacement bound matches its padding variant
    ([Pad_guard8] widens the guard zone); omitted, the default bound is
    used. *)

val equal_translated : translated -> translated -> bool
(** Structural equality. Translation is a pure function of
    (exe, arch, mode, opts), so equal inputs yield equal programs — the
    invariant the translation cache's memoization rests on. *)

val fingerprint : translated -> Omni_util.Fnv64.t
(** Content digest of the translated program; equal programs have equal
    fingerprints. *)

val arch_of : translated -> Arch.t

val certify :
  module_digest:Omni_util.Fnv64.t ->
  mode:Machine.mode ->
  opts:Machine.topts ->
  translated ->
  (Omni_cert.Certificate.t, string) result
(** Run the certifying verifier: like {!verify}, but on success also
    produce the safety witness binding this exact translation (module
    digest × arch × policy × opts × code fingerprint). The certificate
    re-establishes safety later via {!check_cert} at a fraction of the
    cost. Certification accepts exactly the programs {!verify} accepts.
    Traced as the ["certify"] phase. *)

val check_cert :
  module_digest:Omni_util.Fnv64.t ->
  mode:Machine.mode ->
  opts:Machine.topts ->
  ?code_fp:Omni_util.Fnv64.t ->
  Omni_cert.Certificate.t ->
  translated ->
  (unit, string) result
(** Validate a certificate against a translated program: binding checks
    first ({!Omni_cert.Check.bind}), then the one-pass obligation check.
    Pass [code_fp] when the fingerprint is already known (the cache
    stores it per entry) to skip recomputing it. Traced as the
    ["cert.check"] phase. *)
