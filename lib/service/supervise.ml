(* Execution supervision: crash reports, quarantine, deterministic replay.

   The paper's virtual exception model makes a faulting module a normal,
   recoverable event; this module makes it a *structured* one. A crash
   report captures everything needed to understand and reproduce a fault
   offline — the fault itself, the machine state at the fault
   (Exec.crash_site), the request that provoked it, and the module's wire
   bytes as a self-contained replay bundle. The quarantine turns repeated
   deterministic faults into cheap refusals instead of repeated
   translate+execute work. *)

module Fault = Omnivm.Fault
module Machine = Omni_targets.Machine
module Clock = Omni_util.Clock
module Fnv64 = Omni_util.Fnv64

let wall_clock = Clock.fn Unix.gettimeofday

let watchdog ?poll_every ~budget_s () =
  Omnivm.Watchdog.make ?poll_every ~clock:wall_clock ~budget_s ()

(* A transient fault depends on conditions outside the module's control
   (the wall clock); rerunning under a different deadline may succeed, so
   transient faults never count toward quarantine and replay does not
   assert their reproduction. Every other fault is a deterministic
   function of (module, engine, fuel). *)
let transient = function
  | Fault.Deadline_exceeded -> true
  | Fault.Access_violation _ | Fault.Misaligned _ | Fault.Division_by_zero
  | Fault.Illegal_instruction _ | Fault.Unauthorized_host_call _
  | Fault.Stack_overflow | Fault.Explicit_trap _ ->
      false

(* --- crash reports --- *)

type report = {
  r_fault : Fault.t;
  r_engine : Exec.engine;
  r_sfi : bool;
  r_producer : string option; (* front-end that produced the module *)
  r_digest : Fnv64.t;
  r_fuel : int option; (* the request's instruction budget *)
  r_fuel_spent : int;
  r_pc : int;
  r_regs : int array; (* the 16 OmniVM integer registers *)
  r_window_base : int;
  r_window : string;
  r_wire : string; (* the module bytes: the replay bundle *)
}

let no_site =
  { Exec.cs_pc = -1; cs_regs = Array.make 16 0; cs_window_base = -1;
    cs_window = "" }

let of_run ~engine ~sfi ?producer ?fuel ~wire (r : Exec.run_result) :
    report option =
  match r.Exec.outcome with
  | Machine.Exited _ | Machine.Out_of_fuel -> None
  | Machine.Faulted f ->
      let site = Option.value r.Exec.crash ~default:no_site in
      Some
        {
          r_fault = f;
          r_engine = engine;
          r_sfi = sfi;
          r_producer = producer;
          r_digest = Fnv64.digest_string wire;
          r_fuel = fuel;
          r_fuel_spent = r.Exec.instructions;
          r_pc = site.Exec.cs_pc;
          r_regs = site.Exec.cs_regs;
          r_window_base = site.Exec.cs_window_base;
          r_window = site.Exec.cs_window;
          r_wire = wire;
        }

(* --- JSON ---

   Hand-rolled on both sides: the only strings we emit are slugs, engine
   names, and hex-encoded bytes, so neither writer nor reader needs string
   escaping. The reader is a tiny recursive-descent parser over the JSON
   subset the writer produces (null/bool/int/string/array/object), strict
   enough to reject anything else. *)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

exception Bad_report of string

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Bad_report "odd-length hex string");
  let nib c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Bad_report "bad hex digit")
  in
  String.init (n / 2) (fun i ->
      Char.chr ((nib s.[2 * i] lsl 4) lor nib s.[(2 * i) + 1]))

let schema = "omni-crash/1"

let to_json (r : report) =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"schema\":\"%s\"" schema;
  Printf.bprintf b ",\"fault\":{\"kind\":\"%s\",\"code\":%d"
    (Fault.slug r.r_fault) (Fault.code r.r_fault);
  (match r.r_fault with
  | Fault.Access_violation { addr; access } ->
      Printf.bprintf b ",\"addr\":%d,\"access\":\"%s\"" addr
        (Fault.access_name access)
  | Fault.Misaligned { addr; width } ->
      Printf.bprintf b ",\"addr\":%d,\"width\":%d" addr width
  | Fault.Illegal_instruction { pc } -> Printf.bprintf b ",\"pc\":%d" pc
  | Fault.Unauthorized_host_call { index } ->
      Printf.bprintf b ",\"index\":%d" index
  | Fault.Explicit_trap n -> Printf.bprintf b ",\"trap\":%d" n
  | Fault.Division_by_zero | Fault.Stack_overflow | Fault.Deadline_exceeded
    ->
      ());
  Printf.bprintf b "},\"engine\":\"%s\"" (Exec.engine_name r.r_engine);
  Printf.bprintf b ",\"sfi\":%b" r.r_sfi;
  (match r.r_producer with
  | Some p -> Printf.bprintf b ",\"producer\":\"%s\"" p
  | None -> Printf.bprintf b ",\"producer\":null");
  Printf.bprintf b ",\"digest\":\"%s\"" (Fnv64.to_hex r.r_digest);
  (match r.r_fuel with
  | Some f -> Printf.bprintf b ",\"fuel\":%d" f
  | None -> Printf.bprintf b ",\"fuel\":null");
  Printf.bprintf b ",\"fuel_spent\":%d" r.r_fuel_spent;
  Printf.bprintf b ",\"pc\":%d" r.r_pc;
  Buffer.add_string b ",\"regs\":[";
  Array.iteri
    (fun i v -> Printf.bprintf b "%s%d" (if i = 0 then "" else ",") v)
    r.r_regs;
  Buffer.add_string b "]";
  Printf.bprintf b ",\"window_base\":%d" r.r_window_base;
  Printf.bprintf b ",\"window\":\"%s\"" (hex_encode r.r_window);
  Printf.bprintf b ",\"wire\":\"%s\"}" (hex_encode r.r_wire);
  Buffer.contents b

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let n = String.length s in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_report (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail "bad literal"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> fail "escapes not supported in crash reports"
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> J_int v
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); J_obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); J_list [] end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); J_list (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> J_str (string_lit ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_json (text : string) : report =
  let obj = match parse_json text with
    | J_obj kvs -> kvs
    | _ -> raise (Bad_report "crash report must be a JSON object")
  in
  let field name = List.assoc_opt name obj in
  let need name =
    match field name with
    | Some v -> v
    | None -> raise (Bad_report ("missing field " ^ name))
  in
  let as_int name = function
    | J_int v -> v
    | _ -> raise (Bad_report (name ^ " must be an integer"))
  in
  let as_str name = function
    | J_str v -> v
    | _ -> raise (Bad_report (name ^ " must be a string"))
  in
  (match need "schema" with
  | J_str s when s = schema -> ()
  | J_str s -> raise (Bad_report ("unknown schema " ^ s))
  | _ -> raise (Bad_report "schema must be a string"));
  let fobj = match need "fault" with
    | J_obj kvs -> kvs
    | _ -> raise (Bad_report "fault must be an object")
  in
  let ffield name =
    match List.assoc_opt name fobj with
    | Some v -> v
    | None -> raise (Bad_report ("missing fault field " ^ name))
  in
  let fint name = as_int name (ffield name) in
  let r_fault =
    match as_str "kind" (ffield "kind") with
    | "access_violation" ->
        let access =
          match as_str "access" (ffield "access") with
          | "read" -> Fault.Read
          | "write" -> Fault.Write
          | "execute" -> Fault.Execute
          | a -> raise (Bad_report ("bad access kind " ^ a))
        in
        Fault.Access_violation { addr = fint "addr"; access }
    | "misaligned" ->
        Fault.Misaligned { addr = fint "addr"; width = fint "width" }
    | "division_by_zero" -> Fault.Division_by_zero
    | "illegal_instruction" -> Fault.Illegal_instruction { pc = fint "pc" }
    | "unauthorized_host_call" ->
        Fault.Unauthorized_host_call { index = fint "index" }
    | "stack_overflow" -> Fault.Stack_overflow
    | "explicit_trap" -> Fault.Explicit_trap (fint "trap")
    | "deadline_exceeded" -> Fault.Deadline_exceeded
    | k -> raise (Bad_report ("unknown fault kind " ^ k))
  in
  let r_engine =
    match Exec.engine_of_string (as_str "engine" (need "engine")) with
    | Ok e -> e
    | Error msg -> raise (Bad_report msg)
  in
  let r_sfi =
    match need "sfi" with
    | J_bool v -> v
    | _ -> raise (Bad_report "sfi must be a boolean")
  in
  (* absent in pre-producer reports: stay readable *)
  let r_producer =
    match field "producer" with
    | None | Some J_null -> None
    | Some (J_str p) -> Some p
    | Some _ -> raise (Bad_report "producer must be a string or null")
  in
  let r_digest =
    let hex = as_str "digest" (need "digest") in
    match Int64.of_string_opt ("0x" ^ hex) with
    | Some d -> d
    | None -> raise (Bad_report "bad digest")
  in
  let r_fuel =
    match need "fuel" with
    | J_null -> None
    | J_int v -> Some v
    | _ -> raise (Bad_report "fuel must be an integer or null")
  in
  let r_regs =
    match need "regs" with
    | J_list vs when List.length vs = 16 ->
        Array.of_list (List.map (as_int "regs") vs)
    | _ -> raise (Bad_report "regs must be an array of 16 integers")
  in
  {
    r_fault;
    r_engine;
    r_sfi;
    r_producer;
    r_digest;
    r_fuel;
    r_fuel_spent = as_int "fuel_spent" (need "fuel_spent");
    r_pc = as_int "pc" (need "pc");
    r_regs;
    r_window_base = as_int "window_base" (need "window_base");
    r_window = hex_decode (as_str "window" (need "window"));
    r_wire = hex_decode (as_str "wire" (need "wire"));
  }

let filename (r : report) =
  Printf.sprintf "crash-%s-%s-%s.json"
    (Fnv64.to_hex r.r_digest)
    (Exec.engine_name r.r_engine)
    (Fault.slug r.r_fault)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_report ~dir (r : report) =
  mkdir_p dir;
  let path = Filename.concat dir (filename r) in
  let oc = open_out path in
  output_string oc (to_json r);
  output_char oc '\n';
  close_out oc;
  path

let pp fmt (r : report) =
  Format.fprintf fmt "module %s faulted on %s: %s@\n"
    (Fnv64.to_hex r.r_digest)
    (Exec.engine_name r.r_engine)
    (Fault.to_string r.r_fault);
  (match r.r_producer with
  | Some p -> Format.fprintf fmt "  produced by %s@\n" p
  | None -> ());
  Format.fprintf fmt "  sfi %b, fuel %s, %d instructions spent, pc %d@\n"
    r.r_sfi
    (match r.r_fuel with Some f -> string_of_int f | None -> "unlimited")
    r.r_fuel_spent r.r_pc;
  Format.fprintf fmt "  regs";
  Array.iteri
    (fun i v ->
      if i mod 4 = 0 then Format.fprintf fmt "@\n   ";
      Format.fprintf fmt " r%-2d=%08x" i (v land 0xFFFFFFFF))
    r.r_regs;
  Format.fprintf fmt "@\n";
  if r.r_window <> "" then begin
    Format.fprintf fmt "  memory around fault:@\n";
    String.iteri
      (fun i c ->
        if i mod 16 = 0 then
          Format.fprintf fmt "%s   %08x " (if i = 0 then "" else "\n")
            (r.r_window_base + i);
        Format.fprintf fmt "%02x " (Char.code c))
      r.r_window;
    Format.fprintf fmt "@\n"
  end

(* --- deterministic replay --- *)

let replay ?watchdog ?engine (r : report) : Exec.run_result =
  let engine = Option.value engine ~default:r.r_engine in
  (* A transient (wall-clock) fault carries no terminating bound of its
     own — an unbounded re-run of a spinning module would never return.
     Re-run it as far as the original run got instead. *)
  let fuel =
    match (r.r_fuel, watchdog) with
    | None, None when transient r.r_fault -> Some (max 1 r.r_fuel_spent)
    | fuel, _ -> fuel
  in
  let exe = Omnivm.Wire.decode r.r_wire in
  let img = Exec.load exe in
  match engine with
  | Exec.Interp -> Exec.run_interp ?fuel ?watchdog img
  | Exec.Fast -> Exec.run_fast ?fuel ?watchdog img
  | Exec.Target arch ->
      (* Mirror Service.resolve_config / Api.run: the bundle records the
         request as expressible on the wire (engine, sfi, fuel); mode and
         opts derive from sfi exactly as they did on the original run. *)
      let mode =
        if r.r_sfi then Machine.Mobile (Omni_sfi.Policy.make ())
        else Machine.Mobile Omni_sfi.Policy.off
      in
      let opts = Exec.mobile_opts arch in
      let tr = Exec.translate ~mode ~opts arch exe in
      Exec.run_translated ?fuel ?watchdog tr img

type verdict =
  | Reproduced
  | Transient of Machine.outcome
  | Diverged of Machine.outcome

let check_replay ?watchdog ?engine (r : report) : verdict =
  let res = replay ?watchdog ?engine r in
  if transient r.r_fault then Transient res.Exec.outcome
  else
    match res.Exec.outcome with
    | Machine.Faulted f when f = r.r_fault -> Reproduced
    | o -> Diverged o

(* --- per-digest quarantine (circuit breaker) --- *)

module Quarantine = struct
  type config = { threshold : int; ttl_s : float; clock : Clock.t }

  let default_config = { threshold = 3; ttl_s = 300.0; clock = wall_clock }

  type entry = {
    mutable strikes : int;
    mutable last_fault : Fault.t option;
    mutable until : float; (* quarantined while clock < until; 0 = not *)
  }

  (* Entries are mutable, so every operation takes [mu] — a leaf-level
     lock held only across table/entry manipulation, never across a run
     or a clock-independent callback. One service shared by a pool of
     server domains then keeps strike accounting exact. *)
  type t = { cfg : config; mu : Mutex.t; tbl : (Fnv64.t, entry) Hashtbl.t }

  exception
    Quarantined of { digest : Fnv64.t; fault : Fault.t; until_s : float }

  let create cfg =
    if cfg.threshold <= 0 then
      invalid_arg "Quarantine.create: threshold must be > 0";
    if cfg.ttl_s <= 0.0 then invalid_arg "Quarantine.create: ttl must be > 0";
    { cfg; mu = Mutex.create (); tbl = Hashtbl.create 64 }

  let locked mu f =
    Mutex.lock mu;
    match f () with
    | v ->
        Mutex.unlock mu;
        v
    | exception e ->
        Mutex.unlock mu;
        raise e

  let check t digest =
    locked t.mu @@ fun () ->
    match Hashtbl.find_opt t.tbl digest with
    | None -> ()
    | Some e ->
        if e.until > 0.0 then begin
          if Clock.now t.cfg.clock >= e.until then
            (* TTL expired: the module gets a fresh set of chances. *)
            Hashtbl.remove t.tbl digest
          else
            raise
              (Quarantined
                 {
                   digest;
                   fault = Option.value e.last_fault ~default:Fault.Stack_overflow;
                   until_s = e.until;
                 })
        end

  (* Record one run's outcome; returns true when this note tripped the
     breaker. Deterministic faults strike; a clean exit resets the count
     (the module demonstrably can succeed, so earlier faults were
     input-dependent); transient faults and fuel exhaustion are neutral. *)
  let note t digest (outcome : Machine.outcome) : bool =
    locked t.mu @@ fun () ->
    match outcome with
    | Machine.Faulted f when not (transient f) ->
        let e =
          match Hashtbl.find_opt t.tbl digest with
          | Some e -> e
          | None ->
              let e = { strikes = 0; last_fault = None; until = 0.0 } in
              Hashtbl.add t.tbl digest e;
              e
        in
        e.strikes <- e.strikes + 1;
        e.last_fault <- Some f;
        if e.strikes >= t.cfg.threshold && e.until = 0.0 then begin
          e.until <- Clock.now t.cfg.clock +. t.cfg.ttl_s;
          true
        end
        else false
    | Machine.Exited _ ->
        Hashtbl.remove t.tbl digest;
        false
    | Machine.Faulted _ (* transient *) | Machine.Out_of_fuel -> false

  let clear t digest =
    locked t.mu @@ fun () ->
    match Hashtbl.find_opt t.tbl digest with
    | Some e when e.until > 0.0 ->
        Hashtbl.remove t.tbl digest;
        true
    | Some _ | None -> false

  let clear_all t =
    locked t.mu @@ fun () ->
    let cleared =
      Hashtbl.fold (fun d e acc -> if e.until > 0.0 then d :: acc else acc)
        t.tbl []
    in
    List.iter (Hashtbl.remove t.tbl) cleared;
    List.length cleared

  let active t =
    let now = Clock.now t.cfg.clock in
    locked t.mu @@ fun () ->
    Hashtbl.fold
      (fun d e acc ->
        if e.until > now then (d, e.until) :: acc else acc)
      t.tbl []

  let strikes t digest =
    locked t.mu @@ fun () ->
    match Hashtbl.find_opt t.tbl digest with
    | Some e -> e.strikes
    | None -> 0
end
