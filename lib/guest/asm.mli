(** Textual assembly for StackVM guest modules — the human-writable face
    of the bytecode; [Bytecode.encode] of the result is what ships.

    Syntax (line-oriented; [#] and [;] start comments):
    {v
    .mem 64                  ; words of scratch memory (optional, once)
    .func main 0 1           ; name, arity, extra locals
      push 10
      set 0
    loop:                    ; labels are per-function
      get 0
      brz done
      get 0  sys print_int   ; several ops may share a line
      get 0  push 1  sub  set 0
      jmp loop
    done:
      push 0
      halt
    v}

    Branch targets are labels; [call] takes a function name (forward
    references allowed). Errors come back as [Error.Parse] with the
    offending line. [assemble] only parses — pipe the result through
    {!Validate.check} (or {!Lift.lift}, which does) for the static
    guarantees. *)

val assemble : string -> (Isa.program, Error.t) result

val print : Isa.program -> string
(** Round-trippable listing: [assemble (print p)] succeeds and yields a
    program equal to [p] (labels are synthesized for branch targets). *)
