(* StackVM bytecode codec (see the .mli for the layout).

   The decoder is written in an error-monadic style over an explicit
   cursor: every read is bounds-checked and every refusal is a typed
   [Error.t], so totality is structural — there is no code path that
   raises on malformed input. *)

open Isa

let version = 1
let magic = "GSTK"

(* opcode bytes *)
let op_halt = 0x00
let op_push = 0x01
let op_drop = 0x02
let op_dup = 0x03
let op_swap = 0x04
let op_over = 0x05
let op_get = 0x06
let op_set = 0x07
let op_ldm = 0x08
let op_stm = 0x09
let op_jmp = 0x0A
let op_brz = 0x0B
let op_brnz = 0x0C
let op_call = 0x0D
let op_ret = 0x0E
let op_sys = 0x0F
let op_bin_base = 0x20 (* + index in [Isa.all_bins] *)

let bin_index =
  let tbl = Hashtbl.create 19 in
  List.iteri (fun i b -> Hashtbl.replace tbl b i) all_bins;
  fun b -> Hashtbl.find tbl b

let bin_of_index i = List.nth_opt all_bins i

(* --- encoding --- *)

let encode (p : program) : string =
  let b = Buffer.create 1024 in
  let u8 v = Buffer.add_char b (Char.chr (v land 0xFF)) in
  let u16 v =
    u8 v;
    u8 (v lsr 8)
  in
  let u32 v =
    u16 (v land 0xFFFF);
    u16 ((v lsr 16) land 0xFFFF)
  in
  Buffer.add_string b magic;
  u16 version;
  u16 (Array.length p.p_funcs);
  u32 p.p_mem_words;
  Array.iter
    (fun f ->
      u8 (String.length f.f_name);
      Buffer.add_string b f.f_name;
      u8 f.f_arity;
      u16 f.f_locals;
      u32 (Array.length f.f_code);
      Array.iter
        (fun op ->
          match op with
          | Halt -> u8 op_halt
          | Push v ->
              u8 op_push;
              u32 (Omni_util.Word32.to_unsigned (Omni_util.Word32.of_int v))
          | Drop -> u8 op_drop
          | Dup -> u8 op_dup
          | Swap -> u8 op_swap
          | Over -> u8 op_over
          | Get i ->
              u8 op_get;
              u16 i
          | Set i ->
              u8 op_set;
              u16 i
          | Ldm -> u8 op_ldm
          | Stm -> u8 op_stm
          | Jmp t ->
              u8 op_jmp;
              u32 t
          | Brz t ->
              u8 op_brz;
              u32 t
          | Brnz t ->
              u8 op_brnz;
              u32 t
          | Call fn ->
              u8 op_call;
              u16 fn
          | Ret -> u8 op_ret
          | Sys h ->
              u8 op_sys;
              u8 (host_number h)
          | Bin bin -> u8 (op_bin_base + bin_index bin))
        f.f_code)
    p.p_funcs;
  Buffer.contents b

(* --- decoding --- *)

type cursor = { s : string; mutable off : int }

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

let need c n : (unit, Error.t) result =
  if c.off + n <= String.length c.s then Ok ()
  else Error (Error.Truncated { off = c.off; need = c.off + n - String.length c.s })

let u8 c : (int, Error.t) result =
  let* () = need c 1 in
  let v = Char.code c.s.[c.off] in
  c.off <- c.off + 1;
  Ok v

let u16 c =
  let* a = u8 c in
  let* b = u8 c in
  Ok (a lor (b lsl 8))

let u32 c =
  let* a = u16 c in
  let* b = u16 c in
  Ok (a lor (b lsl 16))

let i32 c =
  let* v = u32 c in
  Ok (Omni_util.Word32.to_int (Omni_util.Word32.of_unsigned v))

let name_ok s =
  String.length s > 0
  && String.length s <= max_name
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
         | _ -> false)
       s

let decode_op c ~fn ~pc : (op, Error.t) result =
  let* byte = u8 c in
  match byte with
  | 0x00 -> Ok Halt
  | 0x01 ->
      let* v = i32 c in
      Ok (Push v)
  | 0x02 -> Ok Drop
  | 0x03 -> Ok Dup
  | 0x04 -> Ok Swap
  | 0x05 -> Ok Over
  | 0x06 ->
      let* i = u16 c in
      Ok (Get i)
  | 0x07 ->
      let* i = u16 c in
      Ok (Set i)
  | 0x08 -> Ok Ldm
  | 0x09 -> Ok Stm
  | 0x0A ->
      let* t = u32 c in
      Ok (Jmp t)
  | 0x0B ->
      let* t = u32 c in
      Ok (Brz t)
  | 0x0C ->
      let* t = u32 c in
      Ok (Brnz t)
  | 0x0D ->
      let* f = u16 c in
      Ok (Call f)
  | 0x0E -> Ok Ret
  | 0x0F -> (
      let* code = u8 c in
      match host_of_number code with
      | Some h -> Ok (Sys h)
      | None -> Error (Error.Unknown_host { fn; pc; code }))
  | byte -> (
      match
        if byte >= op_bin_base then bin_of_index (byte - op_bin_base)
        else None
      with
      | Some bin -> Ok (Bin bin)
      | None -> Error (Error.Bad_opcode { fn; pc; byte }))

let decode_func c ~fn : (func, Error.t) result =
  let* name_len = u8 c in
  let* () = need c name_len in
  let name = String.sub c.s c.off name_len in
  c.off <- c.off + name_len;
  if not (name_ok name) then Error (Error.Bad_name { fn; name })
  else
    let* arity = u8 c in
    if arity > max_arity then
      Error (Error.Bad_count { what = "arity"; value = arity })
    else
      let* locals = u16 c in
      if arity + locals > max_locals then
        Error (Error.Bad_count { what = "locals"; value = locals })
      else
        let* ninstr = u32 c in
        if ninstr > max_code then
          Error (Error.Bad_count { what = "instruction count"; value = ninstr })
        else
          let code = Array.make ninstr Halt in
          let rec go pc : (unit, Error.t) result =
            if pc >= ninstr then Ok ()
            else
              let* op = decode_op c ~fn ~pc in
              code.(pc) <- op;
              go (pc + 1)
          in
          let* () = go 0 in
          Ok { f_name = name; f_arity = arity; f_locals = locals; f_code = code }

let decode (s : string) : (program, Error.t) result =
  let c = { s; off = 0 } in
  let* () =
    if String.length s >= 4 && String.sub s 0 4 = magic then begin
      c.off <- 4;
      Ok ()
    end
    else Error Error.Bad_magic
  in
  let* v = u16 c in
  if v <> version then Error (Error.Bad_version v)
  else
    let* nfuncs = u16 c in
    if nfuncs > max_funcs then
      Error (Error.Bad_count { what = "function count"; value = nfuncs })
    else
      let* mem = u32 c in
      if mem > max_mem_words then
        Error (Error.Bad_count { what = "memory size"; value = mem })
      else
        let funcs = ref [] in
        let rec go fn : (unit, Error.t) result =
          if fn >= nfuncs then Ok ()
          else
            let* f = decode_func c ~fn in
            funcs := f :: !funcs;
            go (fn + 1)
        in
        let* () = go 0 in
        if c.off <> String.length s then
          Error (Error.Trailing_garbage { off = c.off })
        else
          Ok
            {
              p_funcs = Array.of_list (List.rev !funcs);
              p_mem_words = mem;
            }

let equal (a : program) (b : program) = a = b
