(* The guest reference interpreter (see the .mli).

   A straightforward frame-stack evaluator. No dynamic stack-discipline
   checks: [Validate.check] proved depths statically, so pops cannot
   underflow and pushes cannot exceed [Isa.max_stack] here. *)

open Isa
module W = Omni_util.Word32

type outcome = Exited of int | Faulted of Omnivm.Fault.t | Out_of_fuel
type run = { output : string; outcome : outcome; steps : int }

let exit_code = function Exited c -> c | Faulted _ | Out_of_fuel -> -1

type frame = {
  func : func;
  locals : int array;
  stack : int array;
  mutable sp : int;  (* next free slot *)
  mutable pc : int;
}

exception Stop of outcome

let run ?(fuel = 10_000_000) (p : program) : run =
  let out = Buffer.create 64 in
  let mem = Array.make (max 1 p.p_mem_words) 0 in
  let mem_limit = W.of_int p.p_mem_words in
  let steps = ref 0 in
  let frame_of ~args f =
    let locals = Array.make (max 1 (locals_total f)) 0 in
    Array.blit args 0 locals 0 (Array.length args);
    { func = f; locals; stack = Array.make (max_stack + 1) 0; sp = 0; pc = 0 }
  in
  let main =
    match find_func p "main" with
    | Some i -> p.p_funcs.(i)
    | None -> invalid_arg "Interp.run: no main (unvalidated program)"
  in
  let frames = ref [ frame_of ~args:[||] main ] in
  let outcome =
    try
      while true do
        let fr = match !frames with f :: _ -> f | [] -> assert false in
        if !steps >= fuel then raise (Stop Out_of_fuel);
        incr steps;
        let op = fr.func.f_code.(fr.pc) in
        let push v =
          fr.stack.(fr.sp) <- v;
          fr.sp <- fr.sp + 1
        in
        let pop () =
          fr.sp <- fr.sp - 1;
          fr.stack.(fr.sp)
        in
        let next () = fr.pc <- fr.pc + 1 in
        match op with
        | Push v -> push v; next ()
        | Drop -> ignore (pop ()); next ()
        | Dup ->
            let a = pop () in
            push a; push a; next ()
        | Swap ->
            let b = pop () in
            let a = pop () in
            push b; push a; next ()
        | Over ->
            let b = pop () in
            let a = pop () in
            push a; push b; push a; next ()
        | Bin bin -> (
            let b = pop () in
            let a = pop () in
            match binop_of_bin bin with
            | Some op -> (
                match Omnivm.Instr.eval_binop op a b with
                | v -> push v; next ()
                | exception W.Division_by_zero ->
                    raise (Stop (Faulted Omnivm.Fault.Division_by_zero)))
            | None -> (
                match cond_of_bin bin with
                | Some c ->
                    push (if Omnivm.Instr.eval_cond c a b then 1 else 0);
                    next ()
                | None -> assert false))
        | Get i -> push fr.locals.(i); next ()
        | Set i -> fr.locals.(i) <- pop (); next ()
        | Ldm ->
            let idx = pop () in
            if not (W.ltu idx mem_limit) then
              raise (Stop (Faulted (Omnivm.Fault.Explicit_trap trap_mem_oob)));
            push mem.(W.to_unsigned idx);
            next ()
        | Stm ->
            let v = pop () in
            let idx = pop () in
            if not (W.ltu idx mem_limit) then
              raise (Stop (Faulted (Omnivm.Fault.Explicit_trap trap_mem_oob)));
            mem.(W.to_unsigned idx) <- v;
            next ()
        | Jmp t -> fr.pc <- t
        | Brz t ->
            let v = pop () in
            fr.pc <- (if v = 0 then t else fr.pc + 1)
        | Brnz t ->
            let v = pop () in
            fr.pc <- (if v <> 0 then t else fr.pc + 1)
        | Call g ->
            let callee = p.p_funcs.(g) in
            let args = Array.make callee.f_arity 0 in
            (* top of stack = last argument *)
            for i = callee.f_arity - 1 downto 0 do
              args.(i) <- pop ()
            done;
            next ();  (* resume here after Ret *)
            frames := frame_of ~args callee :: !frames
        | Ret -> (
            let v = pop () in
            match !frames with
            | _ :: (caller :: _ as rest) ->
                frames := rest;
                caller.stack.(caller.sp) <- v;
                caller.sp <- caller.sp + 1
            | [ _ ] | [] ->
                (* main returned: crt0 passes the result to Exit *)
                raise (Stop (Exited v)))
        | Halt -> raise (Stop (Exited (pop ())))
        | Sys Print_int ->
            Buffer.add_string out (string_of_int (pop ()));
            next ()
        | Sys Put_char ->
            Buffer.add_char out (Char.chr (pop () land 0xFF));
            next ()
      done;
      assert false
    with Stop o -> o
  in
  { output = Buffer.contents out; outcome; steps = !steps }
