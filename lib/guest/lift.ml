(* StackVM -> OmniVM lifting (see the .mli for the scheme).

   Register budget:
     r1        host-call argument/result staging, callee result
     r2, r3    per-op scratch
     r4..r12   the operand-stack pool (first [pool] of them)
   Slot [s] lives in [r4+s] for [s < pool], else in frame spill slot
   [s - pool]. The validator's per-pc depth makes every slot's location
   a static fact, so each guest op compiles to a fixed sequence.

   Frame layout (sp-relative, F bytes):
     0             saved ra
     4 + 4i        local i (arguments first, then zero-initialized)
     4 + 4L + 4j   operand-stack spill slot j
     4 + 4L + 4S + 4k   saved pool register r4+k
     F - 4(k+1)    incoming argument k
   Arguments are passed at -4(k+1) from the CALLER's sp, i.e. at
   F - 4(k+1) from the callee's sp after the prologue's adjustment; the
   frame reserves those top 4*arity bytes so the prologue's own stores
   (saved registers, zeroed locals) cannot clobber an argument before
   it is copied into its local. *)

open Isa
module B = Omni_asm.Obj.Builder
module I = Omnivm.Instr
module Reg = Omnivm.Reg

type options = { pool : int }

let default_options = { pool = 9 }

let mem_sym = "g$mem" (* '$' cannot appear in a guest identifier *)
let fun_sym name = "g." ^ name

type fctx = {
  b : B.t;
  prog : program;
  f : func;
  pool : int;
  nlocals : int;
  nspills : int;
  npool : int; (* pool registers this function touches (and saves) *)
  frame : int;
  mutable fresh : int; (* local-label counter *)
}

let r1 = Reg.make 1
let r2 = Reg.make 2
let r3 = Reg.make 3
let slot_reg s = Reg.make (4 + s)
let local_off _ctx i = 4 + (4 * i)
let spill_off ctx j = 4 + (4 * ctx.nlocals) + (4 * j)
let save_off ctx k = 4 + (4 * ctx.nlocals) + (4 * ctx.nspills) + (4 * k)

let pc_label ctx pc = Printf.sprintf ".Lg.%s.%d" ctx.f.f_name pc
let epi_label ctx = Printf.sprintf ".Lg.%s.epi" ctx.f.f_name

let fresh_label ctx what =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf ".Lg.%s.%s%d" ctx.f.f_name what n

let emit ctx i = B.emit ctx.b i
let jump ctx sym = B.emit_reloc ctx.b (I.J 0) ~field:Omni_asm.Obj.Label ~sym ~addend:0
let here ctx name = B.def_label_here ctx.b ~name ~global:false
let move ctx dst src = if dst <> src then emit ctx (I.Binopi (I.Add, dst, src, 0))

(* The register holding slot [s]'s value, loading spilled slots into
   [scratch]. Only read through this. *)
let read_slot ctx ~scratch s =
  if s < ctx.pool then slot_reg s
  else begin
    emit ctx (I.Load (I.W32, true, scratch, Reg.sp, spill_off ctx (s - ctx.pool)));
    scratch
  end

(* The register to compute slot [s]'s new value into ... *)
let dst_reg ctx s = if s < ctx.pool then slot_reg s else r2

(* ... and the write-back making [src] slot [s]'s value. *)
let commit ctx ~src s =
  if s < ctx.pool then move ctx (slot_reg s) src
  else emit ctx (I.Store (I.W32, src, Reg.sp, spill_off ctx (s - ctx.pool)))

(* Bounds-check the guest memory index in [idx] (unsigned compare against
   the static size — SFI-independent memory safety), then leave the byte
   address in r3. Clobbers r2 and r3. *)
let checked_mem_addr ctx ~idx =
  let ok = fresh_label ctx "m" in
  B.emit_reloc ctx.b
    (I.Bri (I.Ltu, idx, ctx.prog.p_mem_words, 0))
    ~field:Omni_asm.Obj.Label ~sym:ok ~addend:0;
  emit ctx (I.Trap trap_mem_oob);
  here ctx ok;
  emit ctx (I.Binopi (I.Sll, r2, idx, 2));
  B.emit_reloc ctx.b (I.Li (r3, 0)) ~field:Omni_asm.Obj.Imm ~sym:mem_sym
    ~addend:0;
  emit ctx (I.Binop (I.Add, r3, r3, r2))

let gen_op ctx op ~depth:d =
  match op with
  | Push v ->
      let dst = dst_reg ctx d in
      emit ctx (I.Li (dst, v));
      commit ctx ~src:dst d
  | Drop -> ()
  | Dup ->
      let src = read_slot ctx ~scratch:r2 (d - 1) in
      commit ctx ~src d
  | Swap ->
      let a = read_slot ctx ~scratch:r2 (d - 2) in
      let b = read_slot ctx ~scratch:r3 (d - 1) in
      (* both values are in registers now; a register-resident slot is its
         own holder, so route through scratch when both slots are pooled *)
      if d - 1 < ctx.pool && d - 2 < ctx.pool then begin
        move ctx r2 a;
        move ctx (slot_reg (d - 2)) b;
        move ctx (slot_reg (d - 1)) r2
      end
      else begin
        commit ctx ~src:a (d - 1);
        commit ctx ~src:b (d - 2)
      end
  | Over ->
      let src = read_slot ctx ~scratch:r2 (d - 2) in
      commit ctx ~src d
  | Bin bin -> (
      let a = read_slot ctx ~scratch:r2 (d - 2) in
      let b = read_slot ctx ~scratch:r3 (d - 1) in
      match binop_of_bin bin with
      | Some op ->
          let dst = dst_reg ctx (d - 2) in
          emit ctx (I.Binop (op, dst, a, b));
          commit ctx ~src:dst (d - 2)
      | None -> (
          match cond_of_bin bin with
          | Some c ->
              let dst = dst_reg ctx (d - 2) in
              let l_true = fresh_label ctx "t" in
              let l_end = fresh_label ctx "e" in
              B.emit_reloc ctx.b (I.Br (c, a, b, 0))
                ~field:Omni_asm.Obj.Label ~sym:l_true ~addend:0;
              emit ctx (I.Li (dst, 0));
              jump ctx l_end;
              here ctx l_true;
              emit ctx (I.Li (dst, 1));
              here ctx l_end;
              commit ctx ~src:dst (d - 2)
          | None -> assert false))
  | Get i ->
      let dst = dst_reg ctx d in
      emit ctx (I.Load (I.W32, true, dst, Reg.sp, local_off ctx i));
      commit ctx ~src:dst d
  | Set i ->
      let src = read_slot ctx ~scratch:r2 (d - 1) in
      emit ctx (I.Store (I.W32, src, Reg.sp, local_off ctx i))
  | Ldm ->
      let idx = read_slot ctx ~scratch:r2 (d - 1) in
      checked_mem_addr ctx ~idx;
      let dst = dst_reg ctx (d - 1) in
      emit ctx (I.Load (I.W32, true, dst, r3, 0));
      commit ctx ~src:dst (d - 1)
  | Stm ->
      let idx = read_slot ctx ~scratch:r2 (d - 2) in
      checked_mem_addr ctx ~idx;
      (* r3 = byte address; r2 is free again *)
      let v = read_slot ctx ~scratch:r2 (d - 1) in
      emit ctx (I.Store (I.W32, v, r3, 0))
  | Jmp t -> jump ctx (pc_label ctx t)
  | Brz t ->
      let v = read_slot ctx ~scratch:r2 (d - 1) in
      B.emit_reloc ctx.b (I.Bri (I.Eq, v, 0, 0)) ~field:Omni_asm.Obj.Label
        ~sym:(pc_label ctx t) ~addend:0
  | Brnz t ->
      let v = read_slot ctx ~scratch:r2 (d - 1) in
      B.emit_reloc ctx.b (I.Bri (I.Ne, v, 0, 0)) ~field:Omni_asm.Obj.Label
        ~sym:(pc_label ctx t) ~addend:0
  | Call g ->
      let callee = ctx.prog.p_funcs.(g) in
      let a = callee.f_arity in
      for k = 0 to a - 1 do
        let src = read_slot ctx ~scratch:r2 (d - a + k) in
        emit ctx (I.Store (I.W32, src, Reg.sp, -4 * (k + 1)))
      done;
      B.emit_reloc ctx.b (I.Jal 0) ~field:Omni_asm.Obj.Label
        ~sym:(fun_sym callee.f_name) ~addend:0;
      commit ctx ~src:r1 (d - a)
  | Ret ->
      let src = read_slot ctx ~scratch:r2 (d - 1) in
      move ctx r1 src;
      jump ctx (epi_label ctx)
  | Halt ->
      let src = read_slot ctx ~scratch:r2 (d - 1) in
      move ctx r1 src;
      emit ctx (I.Hcall (Omnivm.Hostcall.number Omnivm.Hostcall.Exit))
  | Sys h ->
      let src = read_slot ctx ~scratch:r2 (d - 1) in
      move ctx r1 src;
      emit ctx (I.Hcall (Omnivm.Hostcall.number (hostcall_of_host h)))

let gen_func b prog ~pool (f : func) (info : Validate.finfo) =
  let nlocals = locals_total f in
  let npool = min info.fi_max pool in
  let nspills = max 0 (info.fi_max - pool) in
  let frame = 4 + (4 * nlocals) + (4 * nspills) + (4 * npool) + (4 * f.f_arity) in
  let ctx = { b; prog; f; pool; nlocals; nspills; npool; frame; fresh = 0 } in
  (* the pcs branches land on, so only they get labels *)
  let targets = Hashtbl.create 16 in
  Array.iter
    (function
      | Jmp t | Brz t | Brnz t -> Hashtbl.replace targets t ()
      | _ -> ())
    f.f_code;
  B.def_label_here b ~name:(fun_sym f.f_name) ~global:false;
  (* prologue *)
  emit ctx (I.Binopi (I.Add, Reg.sp, Reg.sp, -frame));
  emit ctx (I.Store (I.W32, Reg.ra, Reg.sp, 0));
  for k = 0 to npool - 1 do
    emit ctx (I.Store (I.W32, slot_reg k, Reg.sp, save_off ctx k))
  done;
  for k = 0 to f.f_arity - 1 do
    emit ctx (I.Load (I.W32, true, r2, Reg.sp, frame - (4 * (k + 1))));
    emit ctx (I.Store (I.W32, r2, Reg.sp, local_off ctx k))
  done;
  for i = f.f_arity to nlocals - 1 do
    emit ctx (I.Store (I.W32, Reg.zero, Reg.sp, local_off ctx i))
  done;
  (* body *)
  Array.iteri
    (fun pc op ->
      if Hashtbl.mem targets pc then here ctx (pc_label ctx pc);
      match info.fi_depth.(pc) with
      | Some d -> gen_op ctx op ~depth:d
      | None ->
          (* statically unreachable; never executed, trap defensively *)
          emit ctx (I.Trap trap_unreachable))
    f.f_code;
  (* epilogue (reached from every Ret) *)
  here ctx (epi_label ctx);
  for k = 0 to npool - 1 do
    emit ctx (I.Load (I.W32, true, slot_reg k, Reg.sp, save_off ctx k))
  done;
  emit ctx (I.Load (I.W32, true, Reg.ra, Reg.sp, 0));
  emit ctx (I.Binopi (I.Add, Reg.sp, Reg.sp, frame));
  emit ctx (I.Jr Reg.ra)

let gen_program ~pool (p : program) (info : Validate.info) : Omni_asm.Obj.t =
  let b = B.create "stackvm" in
  (* crt0: the standard entry convention, so lifted modules are
     indistinguishable from compiled ones downstream *)
  B.def_label_here b ~name:"_start" ~global:true;
  B.emit_reloc b (I.Jal 0) ~field:Omni_asm.Obj.Label
    ~sym:(fun_sym p.p_funcs.(info.i_main).f_name)
    ~addend:0;
  B.emit b (I.Hcall (Omnivm.Hostcall.number Omnivm.Hostcall.Exit));
  Array.iteri (fun i f -> gen_func b p ~pool f info.i_funcs.(i)) p.p_funcs;
  B.def_symbol b ~name:mem_sym ~section:Omni_asm.Obj.Data
    ~offset:(B.here_data b) ~global:false;
  B.bss_space b (4 * max 1 p.p_mem_words);
  B.finish b

let lift_exe ?(options = default_options) (p : program) :
    (Omnivm.Exe.t, Error.t) result =
  if options.pool < 1 || options.pool > 9 then
    invalid_arg "Lift.lift_exe: pool must be in [1, 9]";
  match Validate.check p with
  | Error e -> Error e
  | Ok info ->
      Omni_obs.Trace.phase "guest.lift" ~attrs:[ ("producer", "stackvm") ]
      @@ fun () ->
      let obj =
        Omni_obs.Trace.timed "pass.liftgen" (fun () ->
            gen_program ~pool:options.pool p info)
      in
      Ok
        (Omni_obs.Trace.timed "pass.link" (fun () ->
             Omni_asm.Link.link ~entry:"_start" [ obj ]))

let lift_wire ?options (p : program) : (string, Error.t) result =
  match lift_exe ?options p with
  | Ok exe -> Ok (Omnivm.Wire.encode exe)
  | Error e -> Error e

let lift_bytes ?options (bytes : string) : (string, Error.t) result =
  match Bytecode.decode bytes with
  | Error e -> Error e
  | Ok p -> lift_wire ?options p

(* --- the Producer view --- *)

let producer : Omni_producer.Producer.t =
  (module struct
    let name = "stackvm"
    let describe = "StackVM guest assembly, lifted to OmniVM"

    let compile ~name:_ source =
      match Asm.assemble source with
      | Error e ->
          let line = match e with Error.Parse { line; _ } -> line | _ -> 0 in
          Error
            (Omni_producer.Producer.error ~producer:"stackvm" ~stage:"parse"
               ~line (Error.to_string e))
      | Ok p -> (
          match lift_wire p with
          | Ok wire -> Ok wire
          | Error e ->
              Error
                (Omni_producer.Producer.error ~producer:"stackvm"
                   ~stage:"lift" (Error.to_string e)))
  end)
