(* The StackVM textual assembler (see the .mli).

   Single pass over tokens with symbolic jump/call operands, then a
   resolution pass: labels are per-function, function names are
   program-wide and may be referenced before their definition. *)

open Isa

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

(* parsed op: branch/call operands still symbolic *)
type pop =
  | P_op of op
  | P_jmp of string
  | P_brz of string
  | P_brnz of string
  | P_call of string

type pfunc = {
  pf_name : string;
  pf_arity : int;
  pf_locals : int;
  mutable pf_code : (int * pop) list;  (* reversed; (line, op) *)
  pf_labels : (string, int) Hashtbl.t;
}

let bin_table =
  let tbl = Hashtbl.create 19 in
  List.iter (fun b -> Hashtbl.replace tbl (bin_name b) b) all_bins;
  tbl

let host_table =
  let tbl = Hashtbl.create 3 in
  List.iter (fun h -> Hashtbl.replace tbl (host_name h) h) all_hosts;
  tbl

let ident_ok s =
  String.length s > 0
  && String.length s <= max_name
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
         | _ -> false)
       s

let int_arg line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: expected an integer, got %S" what s

let imm32 line s =
  let v = int_arg line "push" s in
  if v < -0x8000_0000 || v >= 0x1_0000_0000 then
    fail line "push: immediate %s out of 32-bit range" s
  else Omni_util.Word32.to_int (Omni_util.Word32.of_int v)

let index16 line what s =
  let v = int_arg line what s in
  if v < 0 || v > 0xFFFF then fail line "%s: index %d out of range" what v
  else v

(* Strip comments, split into whitespace-separated tokens. *)
let tokens_of_line s =
  let s =
    match (String.index_opt s '#', String.index_opt s ';') with
    | None, None -> s
    | Some i, None | None, Some i -> String.sub s 0 i
    | Some i, Some j -> String.sub s 0 (min i j)
  in
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

let assemble_exn (src : string) : program =
  let mem_words = ref None in
  let funcs = ref [] in  (* reversed pfuncs *)
  let cur : pfunc option ref = ref None in
  let current line =
    match !cur with
    | Some f -> f
    | None -> fail line "instruction outside of a .func"
  in
  let pc f = List.length f.pf_code in
  let push_op f line op = f.pf_code <- (line, op) :: f.pf_code in
  let rec op_tokens line toks =
    match toks with
    | [] -> ()
    | tok :: rest when String.length tok > 1 && tok.[String.length tok - 1] = ':'
      ->
        let f = current line in
        let name = String.sub tok 0 (String.length tok - 1) in
        if not (ident_ok name) then fail line "malformed label %S" name;
        if Hashtbl.mem f.pf_labels name then
          fail line "duplicate label %S" name;
        Hashtbl.replace f.pf_labels name (pc f);
        op_tokens line rest
    | tok :: rest -> (
        let f = current line in
        let unary what k =
          match rest with
          | arg :: rest' ->
              push_op f line (k arg);
              op_tokens line rest'
          | [] -> fail line "%s: missing operand" what
        in
        match tok with
        | "push" -> unary "push" (fun a -> P_op (Push (imm32 line a)))
        | "get" -> unary "get" (fun a -> P_op (Get (index16 line "get" a)))
        | "set" -> unary "set" (fun a -> P_op (Set (index16 line "set" a)))
        | "jmp" -> unary "jmp" (fun a -> P_jmp a)
        | "brz" -> unary "brz" (fun a -> P_brz a)
        | "brnz" -> unary "brnz" (fun a -> P_brnz a)
        | "call" -> unary "call" (fun a -> P_call a)
        | "sys" ->
            unary "sys" (fun a ->
                match Hashtbl.find_opt host_table a with
                | Some h -> P_op (Sys h)
                | None -> fail line "sys: unknown host service %S" a)
        | "drop" -> push_op f line (P_op Drop); op_tokens line rest
        | "dup" -> push_op f line (P_op Dup); op_tokens line rest
        | "swap" -> push_op f line (P_op Swap); op_tokens line rest
        | "over" -> push_op f line (P_op Over); op_tokens line rest
        | "ldm" -> push_op f line (P_op Ldm); op_tokens line rest
        | "stm" -> push_op f line (P_op Stm); op_tokens line rest
        | "ret" -> push_op f line (P_op Ret); op_tokens line rest
        | "halt" -> push_op f line (P_op Halt); op_tokens line rest
        | _ -> (
            match Hashtbl.find_opt bin_table tok with
            | Some b ->
                push_op f line (P_op (Bin b));
                op_tokens line rest
            | None -> fail line "unknown mnemonic %S" tok))
  in
  let directive line toks =
    match toks with
    | ".mem" :: rest -> (
        (match !mem_words with
        | Some _ -> fail line ".mem given twice"
        | None -> ());
        match rest with
        | [ n ] ->
            let v = int_arg line ".mem" n in
            if v < 0 || v > max_mem_words then
              fail line ".mem: %d out of range (max %d)" v max_mem_words;
            mem_words := Some v
        | _ -> fail line ".mem: expected one operand")
    | [ ".func"; name; arity; locals ] ->
        if not (ident_ok name) then fail line "malformed function name %S" name;
        let arity = int_arg line ".func arity" arity in
        let locals = int_arg line ".func locals" locals in
        if arity < 0 || arity > max_arity then
          fail line ".func: arity %d out of range (max %d)" arity max_arity;
        if locals < 0 || arity + locals > max_locals then
          fail line ".func: %d locals out of range (max %d total)" locals
            max_locals;
        (match !cur with Some f -> funcs := f :: !funcs | None -> ());
        cur :=
          Some
            {
              pf_name = name;
              pf_arity = arity;
              pf_locals = locals;
              pf_code = [];
              pf_labels = Hashtbl.create 8;
            }
    | ".func" :: _ -> fail line ".func: expected name, arity, locals"
    | d :: _ -> fail line "unknown directive %S" d
    | [] -> assert false
  in
  String.split_on_char '\n' src
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         match tokens_of_line raw with
         | [] -> ()
         | first :: _ as toks ->
             if String.length first > 0 && first.[0] = '.' then
               directive line toks
             else op_tokens line toks);
  (match !cur with Some f -> funcs := f :: !funcs | None -> ());
  let pfuncs = Array.of_list (List.rev !funcs) in
  if Array.length pfuncs > max_funcs then
    fail 0 "too many functions (%d, max %d)" (Array.length pfuncs) max_funcs;
  let func_index = Hashtbl.create 16 in
  Array.iteri
    (fun i pf ->
      if not (Hashtbl.mem func_index pf.pf_name) then
        Hashtbl.replace func_index pf.pf_name i)
    pfuncs;
  let resolve pf (line, p) : op =
    let label l =
      match Hashtbl.find_opt pf.pf_labels l with
      | Some pc -> pc
      | None -> fail line "unknown label %S" l
    in
    match p with
    | P_op op -> op
    | P_jmp l -> Jmp (label l)
    | P_brz l -> Brz (label l)
    | P_brnz l -> Brnz (label l)
    | P_call name -> (
        match Hashtbl.find_opt func_index name with
        | Some i -> Call i
        | None -> fail line "call to unknown function %S" name)
  in
  let p_funcs =
    Array.map
      (fun pf ->
        let code =
          List.rev_map (resolve pf) pf.pf_code |> Array.of_list
        in
        if Array.length code > max_code then
          fail 0 "function %S too long (%d instructions, max %d)" pf.pf_name
            (Array.length code) max_code;
        {
          f_name = pf.pf_name;
          f_arity = pf.pf_arity;
          f_locals = pf.pf_locals;
          f_code = code;
        })
      pfuncs
  in
  { p_funcs; p_mem_words = (match !mem_words with Some m -> m | None -> 0) }

let assemble src =
  match assemble_exn src with
  | p -> Ok p
  | exception Parse_error (line, msg) -> Error (Error.Parse { line; msg })

(* --- listing (round-trippable) --- *)

let print (p : program) : string =
  let b = Buffer.create 1024 in
  if p.p_mem_words > 0 then
    Buffer.add_string b (Printf.sprintf ".mem %d\n" p.p_mem_words);
  Array.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf ".func %s %d %d\n" f.f_name f.f_arity f.f_locals);
      let targets = Hashtbl.create 8 in
      Array.iter
        (function
          | Jmp t | Brz t | Brnz t -> Hashtbl.replace targets t ()
          | _ -> ())
        f.f_code;
      let label pc = Printf.sprintf "L%d" pc in
      Array.iteri
        (fun pc op ->
          if Hashtbl.mem targets pc then
            Buffer.add_string b (Printf.sprintf "%s:\n" (label pc));
          let s =
            match op with
            | Push v -> Printf.sprintf "push %d" v
            | Drop -> "drop"
            | Dup -> "dup"
            | Swap -> "swap"
            | Over -> "over"
            | Bin bin -> bin_name bin
            | Get i -> Printf.sprintf "get %d" i
            | Set i -> Printf.sprintf "set %d" i
            | Ldm -> "ldm"
            | Stm -> "stm"
            | Jmp t -> Printf.sprintf "jmp %s" (label t)
            | Brz t -> Printf.sprintf "brz %s" (label t)
            | Brnz t -> Printf.sprintf "brnz %s" (label t)
            | Call g -> Printf.sprintf "call %s" p.p_funcs.(g).f_name
            | Ret -> "ret"
            | Halt -> "halt"
            | Sys h -> Printf.sprintf "sys %s" (host_name h)
          in
          Buffer.add_string b ("  " ^ s ^ "\n"))
        f.f_code;
      (* labels pointing one past the end cannot arise: Validate rejects
         them, and [print] is only used on validated programs *)
      ())
    p.p_funcs;
  Buffer.contents b
