(** The reference interpreter for guest programs — the oracle the lifted
    OmniVM module is differentially tested against.

    Semantic agreement is by construction, not by re-implementation:
    arithmetic evaluates through [Omnivm.Instr.eval_binop]/[eval_cond]
    (the same code path the OmniVM interpreter and every translator
    encode), host output is produced exactly as {!Omni_runtime.Host}
    produces it, and faults are reported as [Omnivm.Fault.t] with the
    same codes the lifted module traps with ([Isa.trap_mem_oob] for an
    out-of-bounds scratch access, division by zero from [Word32]).

    Only call on programs {!Validate.check} accepted; on anything else
    the interpreter may raise. *)

type outcome =
  | Exited of int  (** [Halt], or [main] returning: the status word *)
  | Faulted of Omnivm.Fault.t
  | Out_of_fuel

type run = {
  output : string;  (** everything printed through [Sys] ops *)
  outcome : outcome;
  steps : int;  (** guest instructions executed *)
}

val run : ?fuel:int -> Isa.program -> run
(** [fuel] bounds guest steps (default [10_000_000]). *)

val exit_code : outcome -> int
(** [Exited c -> c], everything else [-1] — the same collapse
    [Omni_service.Exec.run_result.exit_code] applies. *)
