(* The StackVM guest ISA: a small stack-machine bytecode, structurally
   unlike OmniVM (0-operand stack ops vs three-address registers), so the
   lifter in [Lift] is a genuine second producer and not a renaming.

   Model:
   - a per-frame operand stack of 32-bit words (depth statically bounded;
     [Validate] proves the discipline before anything executes or lifts),
   - per-function locals; a function's first [f_arity] locals are its
     arguments, the rest start at zero,
   - one program-wide scratch memory of [p_mem_words] 32-bit words,
     addressed by word index and bounds-checked (an out-of-bounds access
     is the guest trap {!trap_mem_oob}),
   - structured calls: [Call] pops the callee's arguments (deepest value
     = first argument), runs it, and pushes its single result,
   - host access through [Sys]: a closed, deterministic set of services
     mapped onto OmniVM host calls by the lifter.

   All arithmetic is 32-bit two's complement with OmniVM's exact
   semantics — the reference interpreter evaluates through
   [Omnivm.Instr.eval_binop]/[eval_cond], so oracle and lifted module
   cannot disagree on a corner case by construction. *)

(* pop b, pop a, push (a op b). Shl/Shr/Sar mask the count to 5 bits;
   Div/Rem fault on a zero divisor, exactly like OmniVM. Comparisons
   push 1 or 0. *)
type bin =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr | Sar
  | Eq | Ne | Lt | Le | Gt | Ge | Ltu | Gtu

(* Host services a guest program may request. Deliberately a closed,
   deterministic subset of the OmniVM host-call surface: guest programs
   must behave bit-identically on the oracle and every engine, so
   nondeterministic services (clock, sbrk) are not exposed. *)
type host = Print_int  (** pop v; print signed decimal *)
          | Put_char  (** pop v; print byte [v land 0xFF] *)

type op =
  | Push of int  (* push imm32 *)
  | Drop
  | Dup  (* a -- a a *)
  | Swap  (* a b -- b a *)
  | Over  (* a b -- a b a *)
  | Bin of bin
  | Get of int  (* push local i *)
  | Set of int  (* local i <- pop *)
  | Ldm  (* idx -- mem[idx] *)
  | Stm  (* idx v -- ;  mem[idx] <- v *)
  | Jmp of int  (* unconditional, to instruction index *)
  | Brz of int  (* pop; branch if zero *)
  | Brnz of int  (* pop; branch if nonzero *)
  | Call of int  (* function index; pops arity args, pushes result *)
  | Ret  (* pop result, return to caller *)
  | Halt  (* pop status, terminate the program *)
  | Sys of host

type func = {
  f_name : string;
  f_arity : int;  (* arguments, = the first locals *)
  f_locals : int;  (* additional locals beyond the arguments *)
  f_code : op array;
}

type program = {
  p_funcs : func array;
  p_mem_words : int;  (* words of program-wide scratch memory *)
}

(* --- static limits (enforced by the decoder and the validator) --- *)

let max_funcs = 256
let max_arity = 8
let max_locals = 256  (* arity + extra locals *)
let max_code = 65536
let max_mem_words = 65536
let max_stack = 256  (* operand-stack depth bound *)
let max_name = 64

(* --- guest trap codes (delivered as OmniVM [Explicit_trap n]) --- *)

let trap_mem_oob = 1  (* scratch-memory index out of bounds *)
let trap_unreachable = 2  (* validator-proven-unreachable code executed *)

(* --- stack effects --- *)

let pops program = function
  | Push _ | Get _ -> 0
  | Drop | Set _ | Brz _ | Brnz _ | Ret | Halt | Sys _ -> 1
  | Dup -> 1
  | Swap | Over -> 2
  | Bin _ | Stm -> 2
  | Ldm -> 1
  | Jmp _ -> 0
  | Call f ->
      if f >= 0 && f < Array.length program.p_funcs then
        program.p_funcs.(f).f_arity
      else 0

let pushes = function
  | Push _ | Get _ -> 1
  | Drop | Set _ | Brz _ | Brnz _ | Stm -> 0
  | Dup -> 2
  | Swap -> 2
  | Over -> 3
  | Bin _ | Ldm | Call _ -> 1
  | Jmp _ -> 0
  | Ret | Halt -> 0
  | Sys _ -> 0

(* Control never falls through these. *)
let is_terminator = function
  | Jmp _ | Ret | Halt -> true
  | Push _ | Drop | Dup | Swap | Over | Bin _ | Get _ | Set _ | Ldm | Stm
  | Brz _ | Brnz _ | Call _ | Sys _ ->
      false

let locals_total f = f.f_arity + f.f_locals

let find_func program name =
  let rec go i =
    if i >= Array.length program.p_funcs then None
    else if String.equal program.p_funcs.(i).f_name name then Some i
    else go (i + 1)
  in
  go 0

(* Map guest arithmetic onto OmniVM's: the oracle evaluates through these,
   the lifter emits them, so the two semantics are the same code path. *)
let binop_of_bin : bin -> Omnivm.Instr.binop option = function
  | Add -> Some Omnivm.Instr.Add
  | Sub -> Some Omnivm.Instr.Sub
  | Mul -> Some Omnivm.Instr.Mul
  | Div -> Some Omnivm.Instr.Div
  | Rem -> Some Omnivm.Instr.Rem
  | And -> Some Omnivm.Instr.And
  | Or -> Some Omnivm.Instr.Or
  | Xor -> Some Omnivm.Instr.Xor
  | Shl -> Some Omnivm.Instr.Sll
  | Shr -> Some Omnivm.Instr.Srl
  | Sar -> Some Omnivm.Instr.Sra
  | Eq | Ne | Lt | Le | Gt | Ge | Ltu | Gtu -> None

let cond_of_bin : bin -> Omnivm.Instr.cond option = function
  | Eq -> Some Omnivm.Instr.Eq
  | Ne -> Some Omnivm.Instr.Ne
  | Lt -> Some Omnivm.Instr.Lt
  | Le -> Some Omnivm.Instr.Le
  | Gt -> Some Omnivm.Instr.Gt
  | Ge -> Some Omnivm.Instr.Ge
  | Ltu -> Some Omnivm.Instr.Ltu
  | Gtu -> Some Omnivm.Instr.Gtu
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar -> None

(* --- names (canonical assembly mnemonics) --- *)

let bin_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt"
  | Ge -> "ge" | Ltu -> "ltu" | Gtu -> "gtu"

let all_bins =
  [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar;
    Eq; Ne; Lt; Le; Gt; Ge; Ltu; Gtu ]

let host_name = function Print_int -> "print_int" | Put_char -> "put_char"
let all_hosts = [ Print_int; Put_char ]

let host_number = function Print_int -> 0 | Put_char -> 1

let host_of_number = function
  | 0 -> Some Print_int
  | 1 -> Some Put_char
  | _ -> None

(* The OmniVM host call each guest service lifts to. *)
let hostcall_of_host = function
  | Print_int -> Omnivm.Hostcall.Print_int
  | Put_char -> Omnivm.Hostcall.Put_char

let pp_op fmt (program : program option) op =
  let p format = Format.fprintf fmt format in
  match op with
  | Push v -> p "push %d" v
  | Drop -> p "drop"
  | Dup -> p "dup"
  | Swap -> p "swap"
  | Over -> p "over"
  | Bin b -> p "%s" (bin_name b)
  | Get i -> p "get %d" i
  | Set i -> p "set %d" i
  | Ldm -> p "ldm"
  | Stm -> p "stm"
  | Jmp t -> p "jmp %d" t
  | Brz t -> p "brz %d" t
  | Brnz t -> p "brnz %d" t
  | Call f -> (
      match program with
      | Some pr when f >= 0 && f < Array.length pr.p_funcs ->
          p "call %s" pr.p_funcs.(f).f_name
      | _ -> p "call #%d" f)
  | Ret -> p "ret"
  | Halt -> p "halt"
  | Sys h -> p "sys %s" (host_name h)

let pp fmt program =
  Format.fprintf fmt ".mem %d@." program.p_mem_words;
  Array.iter
    (fun f ->
      Format.fprintf fmt ".func %s %d %d@." f.f_name f.f_arity f.f_locals;
      Array.iteri
        (fun i op ->
          Format.fprintf fmt "  %3d: %a@." i
            (fun fmt op -> pp_op fmt (Some program) op)
            op)
        f.f_code)
    program.p_funcs
