(** Binary wire format for StackVM guest modules — the portable artifact
    a guest tool-chain ships; {!Lift} turns it into an OmniVM module.

    Layout (little-endian):
    ["GSTK"] magic, u16 version, u16 function count, u32 scratch-memory
    words, then each function: u8 name length + name bytes, u8 arity,
    u16 extra locals, u32 instruction count, the instruction stream
    (one opcode byte, then the operand: i32 for push, u32 for branch
    targets, u16 for locals and callees, u8 for host calls).

    {!decode} is total: any byte string yields [Ok] or a typed
    [Error _] — never an exception — and [decode (encode p) = Ok p]
    for every program {!encode} accepts. Decoding checks structure
    (magic, sizes against the ISA limits, opcode and host-call bytes,
    exact consumption of the input); the deeper static rules — stack
    discipline, branch targets, call arities — are {!Validate.check}'s
    job. *)

val version : int

val encode : Isa.program -> string

val decode : string -> (Isa.program, Error.t) result

val equal : Isa.program -> Isa.program -> bool
(** Structural equality (the codec round-trip law is stated with it). *)
