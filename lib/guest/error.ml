(* The guest front-end's typed error variant (see the .mli). *)

type t =
  | Truncated of { off : int; need : int }
  | Bad_magic
  | Bad_version of int
  | Bad_count of { what : string; value : int }
  | Bad_name of { fn : int; name : string }
  | Bad_opcode of { fn : int; pc : int; byte : int }
  | Unknown_host of { fn : int; pc : int; code : int }
  | Trailing_garbage of { off : int }
  | No_main
  | Main_takes_args of { arity : int }
  | Duplicate_function of string
  | Unknown_function of { fn : string; pc : int; target : int }
  | Bad_target of { fn : string; pc : int; target : int }
  | Bad_local of { fn : string; pc : int; index : int }
  | Stack_underflow of { fn : string; pc : int; depth : int; need : int }
  | Stack_mismatch of { fn : string; pc : int; expected : int; found : int }
  | Stack_too_deep of { fn : string; pc : int; depth : int }
  | Falls_off_end of { fn : string }
  | Parse of { line : int; msg : string }

let to_string = function
  | Truncated { off; need } ->
      Printf.sprintf "truncated bytecode: need %d more byte(s) at offset %d"
        need off
  | Bad_magic -> "bad magic (not a GSTK module)"
  | Bad_version v -> Printf.sprintf "unsupported bytecode version %d" v
  | Bad_count { what; value } ->
      Printf.sprintf "unreasonable %s: %d" what value
  | Bad_name { fn; name } ->
      Printf.sprintf "function %d has a malformed name %S" fn name
  | Bad_opcode { fn; pc; byte } ->
      Printf.sprintf "unknown opcode 0x%02x (function %d, pc %d)" byte fn pc
  | Unknown_host { fn; pc; code } ->
      Printf.sprintf "unknown host call %d (function %d, pc %d)" code fn pc
  | Trailing_garbage { off } ->
      Printf.sprintf "trailing garbage after the last function (offset %d)"
        off
  | No_main -> "no `main' function"
  | Main_takes_args { arity } ->
      Printf.sprintf "`main' must take no arguments (has arity %d)" arity
  | Duplicate_function fn -> Printf.sprintf "duplicate function %S" fn
  | Unknown_function { fn; pc; target } ->
      Printf.sprintf "call to unknown function #%d (%s, pc %d)" target fn pc
  | Bad_target { fn; pc; target } ->
      Printf.sprintf "branch target %d out of range (%s, pc %d)" target fn pc
  | Bad_local { fn; pc; index } ->
      Printf.sprintf "local %d out of range (%s, pc %d)" index fn pc
  | Stack_underflow { fn; pc; depth; need } ->
      Printf.sprintf
        "operand-stack underflow: depth %d, need %d (%s, pc %d)" depth need
        fn pc
  | Stack_mismatch { fn; pc; expected; found } ->
      Printf.sprintf
        "inconsistent operand-stack depth at join: %d vs %d (%s, pc %d)"
        expected found fn pc
  | Stack_too_deep { fn; pc; depth } ->
      Printf.sprintf "operand stack too deep: %d (%s, pc %d)" depth fn pc
  | Falls_off_end { fn } ->
      Printf.sprintf "control can fall off the end of %s" fn
  | Parse { line; msg } -> Printf.sprintf "line %d: %s" line msg

let pp fmt e = Format.pp_print_string fmt (to_string e)
