(** Static validation of guest programs — the stack-discipline proof.

    A forward dataflow pass computes, for every reachable instruction of
    every function, the exact operand-stack depth on entry. The ISA's
    structured control flow makes depth a pure function of the program
    counter, so the analysis either assigns one depth per pc or refuses
    the program with a typed {!Error.t}. Everything downstream leans on
    the result: the {!Interp} oracle runs without dynamic stack checks,
    and the {!Lift} code generator assigns each stack slot a fixed
    register or spill location per pc.

    Checked here (the decoder already bounded the raw sizes):
    - a [main] of arity 0 exists; function names are unique,
    - call targets are defined, branch targets are in range, local
      indices are in range,
    - no underflow, no over-deep stack, equal depths at join points,
    - control cannot fall off the end of a function,
    - [Ret]/[Halt] leave exactly the result on the stack (depth 1 after
      popping is depth 0 — enforced by requiring entry depth ≥ 1). *)

type finfo = {
  fi_depth : int option array;
      (** operand-stack depth on entry to each pc; [None] = unreachable *)
  fi_max : int;  (** deepest operand stack anywhere in the function *)
}

type info = {
  i_funcs : finfo array;  (** indexed like [p_funcs] *)
  i_main : int;  (** index of the entry function *)
}

val check : Isa.program -> (info, Error.t) result
