(* Random-but-valid guest programs (see the .mli).

   Code is generated from a statement/expression shape directly into a
   growable op buffer, so stack discipline holds by construction: every
   expression nets exactly one slot, every statement nets zero. Loops
   count a reserved local down to zero and nothing else writes it;
   calls only go to higher-indexed functions — so everything
   terminates. Divisors are nonzero constants and memory indices are
   masked to a power-of-two size, so nothing faults. *)

open Isa

type emitter = { mutable a : op array; mutable n : int }

let emitter () = { a = Array.make 64 Halt; n = 0 }

let emit e op =
  if e.n = Array.length e.a then begin
    let a' = Array.make (2 * e.n) Halt in
    Array.blit e.a 0 a' 0 e.n;
    e.a <- a'
  end;
  e.a.(e.n) <- op;
  e.n <- e.n + 1;
  e.n - 1

let patch e i op = e.a.(i) <- op
let here e = e.n
let finish e = Array.sub e.a 0 e.n

(* what a function being generated may use *)
type ctx = {
  rng : Random.State.t;
  e : emitter;
  nlocals : int;  (* readable locals: indices < nlocals *)
  assignable : int array;  (* locals Set may target (no loop counters) *)
  counters : int array;  (* reserved loop-counter locals *)
  mutable next_counter : int;
  callees : (int * int) array;  (* (function index, arity), higher-indexed *)
  mem_mask : int;  (* p_mem_words - 1 (power of two), -1 if no memory *)
}

let mem_words = 64 (* power of two, so [And (mem_words-1)] bounds indices *)
let pick rng a = a.(Random.State.int rng (Array.length a))

let const ctx =
  match Random.State.int ctx.rng 8 with
  | 0 -> 0
  | 1 -> 1
  | 2 -> -1
  | 3 -> 0x7FFF_FFFF
  | 4 -> -0x8000_0000
  | 5 -> Random.State.int ctx.rng 256
  | 6 -> -Random.State.int ctx.rng 256
  | _ -> Random.State.full_int ctx.rng 0x4000_0000 - 0x2000_0000

(* Emit code leaving exactly one new value on the stack. *)
let rec expr ctx ~depth =
  let r = ctx.rng in
  let leaf () =
    if ctx.nlocals > 0 && Random.State.bool r then
      ignore (emit ctx.e (Get (Random.State.int r ctx.nlocals)))
    else ignore (emit ctx.e (Push (const ctx)))
  in
  if depth <= 0 then leaf ()
  else
    match Random.State.int r 10 with
    | 0 | 1 -> leaf ()
    | 2 | 3 | 4 -> (
        (* binary operator *)
        expr ctx ~depth:(depth - 1);
        expr ctx ~depth:(depth - 1);
        let bin =
          pick r
            [| Add; Sub; Mul; And; Or; Xor; Shl; Shr; Sar;
               Eq; Ne; Lt; Le; Gt; Ge; Ltu; Gtu |]
        in
        ignore (emit ctx.e (Bin bin)))
    | 5 ->
        (* division by a nonzero constant *)
        expr ctx ~depth:(depth - 1);
        ignore (emit ctx.e (Push (1 + Random.State.int r 1000)));
        ignore (emit ctx.e (Bin (if Random.State.bool r then Div else Rem)))
    | 6 when ctx.mem_mask >= 0 ->
        (* masked memory load *)
        expr ctx ~depth:(depth - 1);
        ignore (emit ctx.e (Push ctx.mem_mask));
        ignore (emit ctx.e (Bin And));
        ignore (emit ctx.e Ldm)
    | 7 when Array.length ctx.callees > 0 ->
        let f, arity = pick r ctx.callees in
        for _ = 1 to arity do
          expr ctx ~depth:(depth - 1)
        done;
        ignore (emit ctx.e (Call f))
    | 8 ->
        (* stack shuffles *)
        expr ctx ~depth:(depth - 1);
        ignore (emit ctx.e Dup);
        if Random.State.bool r then ignore (emit ctx.e Swap);
        ignore (emit ctx.e (Bin (pick r [| Add; Xor; Sub |])))
    | _ ->
        expr ctx ~depth:(depth - 1);
        expr ctx ~depth:(depth - 1);
        ignore (emit ctx.e Over);
        ignore (emit ctx.e (Bin Add));
        ignore (emit ctx.e Swap);
        ignore (emit ctx.e Drop)

(* Emit code with net stack effect zero. *)
let rec stmt ctx ~depth ~edepth =
  let r = ctx.rng in
  match Random.State.int r 12 with
  | 0 | 1 when Array.length ctx.assignable > 0 ->
      expr ctx ~depth:edepth;
      ignore (emit ctx.e (Set (pick r ctx.assignable)))
  | 2 when ctx.mem_mask >= 0 ->
      (* masked memory store *)
      expr ctx ~depth:edepth;
      ignore (emit ctx.e (Push ctx.mem_mask));
      ignore (emit ctx.e (Bin And));
      expr ctx ~depth:edepth;
      ignore (emit ctx.e Stm)
  | 3 | 4 ->
      expr ctx ~depth:edepth;
      ignore (emit ctx.e (Sys Print_int))
  | 5 ->
      (* printable character *)
      expr ctx ~depth:edepth;
      ignore (emit ctx.e (Push 0x3F));
      ignore (emit ctx.e (Bin And));
      ignore (emit ctx.e (Push 0x20));
      ignore (emit ctx.e (Bin Add));
      ignore (emit ctx.e (Sys Put_char))
  | 6 | 7 when depth > 0 ->
      (* if/else *)
      expr ctx ~depth:edepth;
      let br = emit ctx.e Halt (* patched *) in
      block ctx ~depth:(depth - 1) ~edepth;
      let jend = emit ctx.e Halt (* patched *) in
      patch ctx.e br
        (if Random.State.bool r then Brz (here ctx.e) else Brnz (here ctx.e));
      block ctx ~depth:(depth - 1) ~edepth;
      patch ctx.e jend (Jmp (here ctx.e))
  | 8 when depth > 0 && ctx.next_counter < Array.length ctx.counters ->
      (* bounded counting loop over a reserved local *)
      let li = ctx.counters.(ctx.next_counter) in
      ctx.next_counter <- ctx.next_counter + 1;
      ignore (emit ctx.e (Push (1 + Random.State.int r 5)));
      ignore (emit ctx.e (Set li));
      let head = here ctx.e in
      ignore (emit ctx.e (Get li));
      let exit_br = emit ctx.e Halt (* patched *) in
      block ctx ~depth:(depth - 1) ~edepth;
      ignore (emit ctx.e (Get li));
      ignore (emit ctx.e (Push 1));
      ignore (emit ctx.e (Bin Sub));
      ignore (emit ctx.e (Set li));
      ignore (emit ctx.e (Jmp head));
      patch ctx.e exit_br (Brz (here ctx.e))
  | _ ->
      expr ctx ~depth:edepth;
      ignore (emit ctx.e Drop)

and block ctx ~depth ~edepth =
  for _ = 1 to 1 + Random.State.int ctx.rng 3 do
    stmt ctx ~depth ~edepth
  done

let gen_func rng ~index ~name ~arity ~callees ~with_mem =
  let extra = Random.State.int rng 3 in
  let ncounters = 2 in
  let e = emitter () in
  let nlocals = arity + extra in
  let ctx =
    {
      rng;
      e;
      nlocals;
      assignable = Array.init nlocals (fun i -> i);
      counters = Array.init ncounters (fun i -> nlocals + i);
      next_counter = 0;
      callees;
      mem_mask = (if with_mem then mem_words - 1 else -1);
    }
  in
  let edepth = 1 + Random.State.int rng 5 in
  for _ = 1 to 1 + Random.State.int rng 4 do
    stmt ctx ~depth:2 ~edepth
  done;
  expr ctx ~depth:edepth;
  ignore (emit e (if index = 0 && Random.State.bool rng then Halt else Ret));
  {
    f_name = name;
    f_arity = arity;
    f_locals = extra + ncounters;
    f_code = finish e;
  }

let program rng : program =
  let nfuncs = 1 + Random.State.int rng 4 in
  let with_mem = Random.State.int rng 4 > 0 in
  (* generate from the last function up so callees are known *)
  let funcs = Array.make nfuncs None in
  let arities =
    Array.init nfuncs (fun i ->
        if i = 0 then 0 else Random.State.int rng 4)
  in
  for i = nfuncs - 1 downto 0 do
    let callees =
      Array.init
        (nfuncs - i - 1)
        (fun k ->
          let j = i + 1 + k in
          (j, arities.(j)))
    in
    let name = if i = 0 then "main" else Printf.sprintf "f%d" i in
    funcs.(i) <-
      Some (gen_func rng ~index:i ~name ~arity:arities.(i) ~callees ~with_mem)
  done;
  {
    p_funcs = Array.map (function Some f -> f | None -> assert false) funcs;
    p_mem_words = (if with_mem then mem_words else 0);
  }
