(** The typed error surface of the guest front-end.

    One variant covers the whole pipeline — assembling, decoding,
    validating, lifting — so callers match on a single type and every
    refusal names exactly where it happened: byte offsets for malformed
    wire input, (function, pc) for bytecode that breaks the static
    rules, source lines for assembler text. Nothing in [Omni_guest]
    raises on bad input; everything returns [(_, Error.t) result]. *)

type t =
  (* bytecode decoding ([Bytecode.decode]; total — never raises) *)
  | Truncated of { off : int; need : int }
      (** input ends at [off], [need] more bytes were required *)
  | Bad_magic
  | Bad_version of int
  | Bad_count of { what : string; value : int }
      (** a size field exceeds the ISA's static limits *)
  | Bad_name of { fn : int; name : string }
  | Bad_opcode of { fn : int; pc : int; byte : int }
  | Unknown_host of { fn : int; pc : int; code : int }
  | Trailing_garbage of { off : int }
  (* static validation ([Validate.check]) *)
  | No_main
  | Main_takes_args of { arity : int }
  | Duplicate_function of string
  | Unknown_function of { fn : string; pc : int; target : int }
  | Bad_target of { fn : string; pc : int; target : int }
  | Bad_local of { fn : string; pc : int; index : int }
  | Stack_underflow of { fn : string; pc : int; depth : int; need : int }
  | Stack_mismatch of { fn : string; pc : int; expected : int; found : int }
      (** two paths reach [pc] with different operand-stack depths *)
  | Stack_too_deep of { fn : string; pc : int; depth : int }
  | Falls_off_end of { fn : string }
  (* assembler ([Asm.assemble]) *)
  | Parse of { line : int; msg : string }

val to_string : t -> string
val pp : Format.formatter -> t -> unit
