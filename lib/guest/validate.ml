(* Stack-discipline validation (see the .mli). *)

open Isa

type finfo = { fi_depth : int option array; fi_max : int }
type info = { i_funcs : finfo array; i_main : int }

exception Reject of Error.t

let check_func (p : program) (f : func) : finfo =
  let fn = f.f_name in
  let len = Array.length f.f_code in
  if len = 0 then raise (Reject (Error.Falls_off_end { fn }));
  let depth = Array.make len None in
  let fi_max = ref 0 in
  let work = Queue.create () in
  let join pc ~from d =
    if pc < 0 || pc >= len then
      raise (Reject (Error.Bad_target { fn; pc = from; target = pc }));
    match depth.(pc) with
    | None ->
        depth.(pc) <- Some d;
        Queue.add pc work
    | Some e ->
        if e <> d then
          raise (Reject (Error.Stack_mismatch { fn; pc; expected = e; found = d }))
  in
  depth.(0) <- Some 0;
  Queue.add 0 work;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let d = match depth.(pc) with Some d -> d | None -> assert false in
    if d > !fi_max then fi_max := d;
    let op = f.f_code.(pc) in
    (* per-op static checks *)
    (match op with
    | Get i | Set i ->
        if i < 0 || i >= locals_total f then
          raise (Reject (Error.Bad_local { fn; pc; index = i }))
    | Call g ->
        if g < 0 || g >= Array.length p.p_funcs then
          raise (Reject (Error.Unknown_function { fn; pc; target = g }))
    | Push _ | Drop | Dup | Swap | Over | Bin _ | Ldm | Stm | Jmp _ | Brz _
    | Brnz _ | Ret | Halt | Sys _ ->
        ());
    let need = pops p op in
    if d < need then
      raise (Reject (Error.Stack_underflow { fn; pc; depth = d; need }));
    let d' = d - need + pushes op in
    if d' > max_stack then
      raise (Reject (Error.Stack_too_deep { fn; pc; depth = d' }));
    if d' > !fi_max then fi_max := d';
    (* successors *)
    (match op with
    | Jmp t -> join t ~from:pc d'
    | Brz t | Brnz t ->
        join t ~from:pc d';
        if pc + 1 >= len then raise (Reject (Error.Falls_off_end { fn }));
        join (pc + 1) ~from:pc d'
    | Ret | Halt -> ()
    | Push _ | Drop | Dup | Swap | Over | Bin _ | Get _ | Set _ | Ldm | Stm
    | Call _ | Sys _ ->
        if pc + 1 >= len then raise (Reject (Error.Falls_off_end { fn }));
        join (pc + 1) ~from:pc d')
  done;
  { fi_depth = depth; fi_max = !fi_max }

let check (p : program) : (info, Error.t) result =
  try
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun f ->
        if Hashtbl.mem seen f.f_name then
          raise (Reject (Error.Duplicate_function f.f_name));
        Hashtbl.add seen f.f_name ())
      p.p_funcs;
    let main =
      match find_func p "main" with
      | Some i -> i
      | None -> raise (Reject Error.No_main)
    in
    if p.p_funcs.(main).f_arity <> 0 then
      raise
        (Reject (Error.Main_takes_args { arity = p.p_funcs.(main).f_arity }));
    let i_funcs = Array.map (check_func p) p.p_funcs in
    Ok { i_funcs; i_main = main }
  with Reject e -> Error e
