(** The lifter: StackVM guest bytecode -> OmniVM mobile module.

    This is the second producer of OmniVM wire modules (MiniC being the
    first), and it is structurally different: the guest is a stack
    machine, so lifting is an operand-stack-to-register mapping, not an
    instruction renaming.

    Scheme (per function, driven by {!Validate}'s per-pc depths):
    - operand-stack slot [s] lives in register [r4+s] while [s] is below
      the register-pool size, and in a fixed frame slot beyond that —
      deep expressions spill, exactly like a register allocator under
      pressure. The pool size is an {!options} knob so tests can force
      the spill paths with tiny pools.
    - every pool register a function touches is saved/restored in its
      prologue/epilogue, so a caller's live stack slots survive calls;
      r1 stages host-call arguments and results, r2/r3 are per-op
      scratch.
    - calls pass arguments through memory just below the caller's stack
      pointer, where the callee's prologue picks them up; results come
      back in r1.
    - guest scratch memory becomes one bss block; every [Ldm]/[Stm]
      emits an unsigned bounds check that faults with
      [Trap Isa.trap_mem_oob] — the same fault the {!Interp} oracle
      reports, and SFI-independent: a guest module can never address
      outside its block even with sandboxing off.
    - the module carries the standard crt0 ([_start]: call the guest
      [main], pass its result to the exit service), so lifted modules
      are indistinguishable from compiled ones to loaders, engines, the
      serving stack and the certificate layer.

    Everything is checked before code generation: [lift*] return typed
    errors for malformed bytecode ({!Bytecode.decode}) and for programs
    that break the static rules ({!Validate.check}); they never raise on
    bad guest input. *)

type options = {
  pool : int;
      (** operand-stack registers (r4 .. r4+pool-1), in [\[1, 9\]];
          smaller pools force spills. Default 9. *)
}

val default_options : options

val lift_exe :
  ?options:options -> Isa.program -> (Omnivm.Exe.t, Error.t) result
(** Validate and lift a decoded guest program to a linked executable. *)

val lift_wire : ?options:options -> Isa.program -> (string, Error.t) result
(** [lift_exe] encoded to wire bytes. *)

val lift_bytes : ?options:options -> string -> (string, Error.t) result
(** The mobile-code ingestion path: guest {e bytecode} bytes in, OmniVM
    wire bytes out (decode, validate, lift, encode). *)

val producer : Omni_producer.Producer.t
(** The StackVM front-end as a {!Omni_producer.Producer}: name
    ["stackvm"], compiling guest {e assembly text} (see {!Asm}) to wire
    bytes. Registered alongside MiniC's producer in [Api.producers]. *)
