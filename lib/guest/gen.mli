(** Seeded random guest programs for the differential harness.

    [program rng] builds a structured program — nested expressions,
    if/else, bounded counting loops, acyclic calls, masked scratch-memory
    access, host output — that is valid by construction
    ([Validate.check] accepts it), terminates, and never faults: any
    divergence between the {!Interp} oracle and the lifted module on one
    of these is a lifter (or engine) bug, not a property of the input.

    Expressions nest deep enough that operand-stack depth routinely
    exceeds a small register pool, so running the same seeds through
    [Lift] with [pool = 2] exercises every spill path. *)

val program : Random.State.t -> Isa.program
