(* The three RISC targets (Mips / Sparc / PowerPC) share one parameterized
   machine: a 32-register load/store architecture whose per-architecture
   differences are captured in [cfg] — immediate field width, branch model
   (fused compare-and-branch vs condition codes vs condition register),
   branch delay slots and annulment, indexed addressing, issue width, and
   operation latencies.

   Register convention for translated code:
     0          hardwired zero
     1          SFI dedicated data-sandbox register
     2          SFI dedicated code-sandbox register
     3,4        data segment mask, base      (SFI constants)
     5,6        code segment mask, base      (SFI constants)
     7          global pointer (when the translator uses one)
     8..23     OmniVM r0..r15 (8 is unused: OmniVM r0 maps to native 0)
     24,25     translator scratch
   Floating point: OmniVM f0..f15 map to native f0..f15; f24 is scratch. *)

module VI = Omnivm.Instr

type arch = Mips | Sparc | Ppc

let arch_name = function Mips -> "mips" | Sparc -> "sparc" | Ppc -> "ppc"

(* How conditional branches are built. *)
type branch_model =
  | Fused_compare (* mips: beq/bne on two regs; b<cond>z against zero *)
  | Cond_codes (* sparc: subcc + branch-on-cc *)
  | Cond_reg (* ppc: cmp + branch-on-cr, compares have latency *)

type cfg = {
  arch : arch;
  imm_bits : int; (* signed immediate field width *)
  branch_model : branch_model;
  has_delay_slot : bool;
  has_annul : bool;
  has_indexed : bool; (* reg+reg addressing (ppc) *)
  issue_width : int;
  load_latency : int;
  mul_latency : int;
  div_latency : int;
  fadd_latency : int;
  fmul_latency : int;
  fdiv_latency : int;
  cmp_latency : int; (* latency of Cmp/Cmpi results (ppc: multi-cycle) *)
  fcmp_latency : int;
  taken_branch_penalty : int; (* for non-delay-slot archs *)
}

let mips_cfg =
  {
    arch = Mips;
    imm_bits = 16;
    branch_model = Fused_compare;
    has_delay_slot = true;
    has_annul = false;
    has_indexed = false;
    issue_width = 1;
    load_latency = 2; (* R4400 superpipelined load-use delay *)
    mul_latency = 4;
    div_latency = 36;
    fadd_latency = 4;
    fmul_latency = 5;
    fdiv_latency = 24;
    cmp_latency = 1;
    fcmp_latency = 2;
    taken_branch_penalty = 0;
  }

let sparc_cfg =
  {
    arch = Sparc;
    imm_bits = 13;
    branch_model = Cond_codes;
    has_delay_slot = true;
    has_annul = true;
    has_indexed = false;
    issue_width = 1;
    load_latency = 2;
    mul_latency = 5;
    div_latency = 36;
    fadd_latency = 3;
    fmul_latency = 3;
    fdiv_latency = 20;
    cmp_latency = 1;
    fcmp_latency = 2;
    taken_branch_penalty = 0;
  }

let ppc_cfg =
  {
    arch = Ppc;
    imm_bits = 16;
    branch_model = Cond_reg;
    has_delay_slot = false;
    has_annul = false;
    has_indexed = true;
    issue_width = 2;
    load_latency = 2;
    mul_latency = 5;
    div_latency = 36;
    fadd_latency = 3;
    fmul_latency = 3;
    fdiv_latency = 31;
    cmp_latency = 3; (* 601 compares are multi-cycle; the paper calls this out *)
    fcmp_latency = 3;
    taken_branch_penalty = 1;
  }

let cfg_of_arch = function
  | Mips -> mips_cfg
  | Sparc -> sparc_cfg
  | Ppc -> ppc_cfg

(* --- registers --- *)

let r_zero = 0
let r_sfi_data = 1
let r_sfi_code = 2
let r_data_mask = 3
let r_data_base = 4
let r_code_mask = 5
let r_code_base = 6
let r_gp = 7
let r_scratch1 = 24
let r_scratch2 = 25
let f_scratch = 24

(* OmniVM integer register -> native register *)
let map_reg r = if r = 0 then 0 else 8 + r
let omni_ra = map_reg Omnivm.Reg.ra
let omni_sp = map_reg Omnivm.Reg.sp

(* --- instructions --- *)

type instr =
  | Alu of VI.binop * int * int * int (* rd, ra, rb *)
  | Alui of VI.binop * int * int * int (* rd, ra, imm (fits field) *)
  | Alu_record of VI.binop * int * int * int
      (* ppc record form: like Alu, and sets cc to (result ? 0) *)
  | Lui of int * int (* rd := high part (value stored pre-shifted) *)
  | Load of VI.mem_width * bool * int * int * int (* rd, base, disp *)
  | Store of VI.mem_width * int * int * int (* rv, base, disp *)
  | Load_x of VI.mem_width * bool * int * int * int (* rd, ra, rb (ppc) *)
  | Store_x of VI.mem_width * int * int * int
  | Fload of int * int * int (* fd, base, disp : double *)
  | Fstore of int * int * int
  | Fload_s of int * int * int (* single precision *)
  | Fstore_s of int * int * int
  | Fload_x of int * int * int
  | Fstore_x of int * int * int
  | Fld_pool of int * int (* fd := constant pool[i] *)
  | Fop of VI.fbinop * VI.fprec * int * int * int
  | Fun1 of VI.funop * int * int
  | Fcmp of VI.fcmp * int * int (* sets fcc *)
  | Fcc_to_reg of int (* rd := fcc ? 1 : 0 *)
  | Cvt_f_i of int * int (* fd := (double) ra *)
  | Cvt_i_f of int * int (* rd := (int) fa *)
  | Cvt_d_s of int * int
  | Cvt_s_d of int * int
  | Cmp of int * int (* cc := (ra, rb) *)
  | Cmpi of int * int (* cc := (ra, imm) *)
  | Br_cc of VI.cond * int (* branch on condition codes *)
  | Br_cmp of VI.cond * int * int * int (* fused: cond, ra, rb, label *)
  | Fbr of bool * int (* branch if fcc = flag *)
  | J of int (* unconditional, label *)
  | Call of int * int (* label, omni return address (written to ra) *)
  | Call_ind of int * int (* target reg, omni return address *)
  | Jmp_ind of int (* indirect jump through reg (omni code address) *)
  | Guard_data of int (* trap unless reg points into the data segment *)
  | Guard_code of int
  | Cc_to_reg of VI.cond * int (* rd := cc satisfies cond ? 1 : 0 *)
  | Trapi of int
  | Hcall of int
  | Nop

(* One slot of translated code: instruction + provenance + (for delay-slot
   architectures) the annul flag on branches. *)
type slot = { i : instr; origin : Machine.origin; annul : bool }

let mk ?(annul = false) origin i = { i; origin; annul }

type program = {
  cfg : cfg;
  code : slot array;
  entry : int; (* native index *)
  addr_map : int array; (* omni instruction index -> native index *)
  pool : float array; (* FP constant pool *)
  n_omni : int;
  decl : Machine.sfi_decl; (* declared SFI masking counts (certification) *)
}

let is_control = function
  | Br_cc _ | Br_cmp _ | Fbr _ | J _ | Call _ | Call_ind _ | Jmp_ind _ -> true
  | Alu _ | Alui _ | Alu_record _ | Lui _ | Load _ | Store _ | Load_x _
  | Store_x _ | Fload _ | Fstore _ | Fload_s _ | Fstore_s _ | Fload_x _
  | Fstore_x _ | Fld_pool _ | Fop _ | Fun1 _ | Fcmp _ | Fcc_to_reg _
  | Cvt_f_i _ | Cvt_i_f _ | Cvt_d_s _ | Cvt_s_d _ | Cmp _ | Cmpi _
  | Guard_data _ | Guard_code _ | Cc_to_reg _ | Trapi _ | Hcall _ | Nop ->
      false

(* --- pipeline attributes --- *)

let rid r = r
let fid f = 32 + f
let cc_id = 64
let fcc_id = 65

let alu_latency cfg = function
  | VI.Mul -> cfg.mul_latency
  | VI.Div | VI.Divu | VI.Rem | VI.Remu -> cfg.div_latency
  | _ -> 1

let attrs cfg (i : instr) : Pipeline.attrs =
  let mk ?(lat = 1) ?(unit_ = Pipeline.IU) ?(load = false) ?(store = false)
      uses defs =
    { Pipeline.uses; defs; latency = lat; unit_; is_load = load;
      is_store = store }
  in
  match i with
  | Alu (op, rd, ra, rb) ->
      mk ~lat:(alu_latency cfg op) [ rid ra; rid rb ] [ rid rd ]
  | Alui (op, rd, ra, _) -> mk ~lat:(alu_latency cfg op) [ rid ra ] [ rid rd ]
  | Alu_record (op, rd, ra, rb) ->
      mk ~lat:(alu_latency cfg op) [ rid ra; rid rb ] [ rid rd; cc_id ]
  | Lui (rd, _) -> mk [] [ rid rd ]
  | Load (_, _, rd, b, _) ->
      mk ~lat:cfg.load_latency ~load:true [ rid b ] [ rid rd ]
  | Load_x (_, _, rd, a, b) ->
      mk ~lat:cfg.load_latency ~load:true [ rid a; rid b ] [ rid rd ]
  | Store (_, rv, b, _) -> mk ~store:true [ rid rv; rid b ] []
  | Store_x (_, rv, a, b) -> mk ~store:true [ rid rv; rid a; rid b ] []
  | Fload (fd, b, _) | Fload_s (fd, b, _) ->
      mk ~lat:cfg.load_latency ~load:true [ rid b ] [ fid fd ]
  | Fload_x (fd, a, b) ->
      mk ~lat:cfg.load_latency ~load:true [ rid a; rid b ] [ fid fd ]
  | Fstore (fv, b, _) | Fstore_s (fv, b, _) ->
      mk ~store:true [ fid fv; rid b ] []
  | Fstore_x (fv, a, b) -> mk ~store:true [ fid fv; rid a; rid b ] []
  | Fld_pool (fd, _) -> mk ~lat:cfg.load_latency ~load:true [] [ fid fd ]
  | Fop (op, _, fd, fa, fb) ->
      let lat =
        match op with
        | VI.Fadd | VI.Fsub -> cfg.fadd_latency
        | VI.Fmul -> cfg.fmul_latency
        | VI.Fdiv -> cfg.fdiv_latency
      in
      mk ~lat ~unit_:Pipeline.FPU [ fid fa; fid fb ] [ fid fd ]
  | Fun1 (_, fd, fa) -> mk ~lat:1 ~unit_:Pipeline.FPU [ fid fa ] [ fid fd ]
  | Fcmp (_, fa, fb) ->
      mk ~lat:cfg.fcmp_latency ~unit_:Pipeline.FPU [ fid fa; fid fb ]
        [ fcc_id ]
  | Fcc_to_reg rd -> mk [ fcc_id ] [ rid rd ]
  | Cvt_f_i (fd, ra) -> mk ~lat:3 ~unit_:Pipeline.FPU [ rid ra ] [ fid fd ]
  | Cvt_i_f (rd, fa) -> mk ~lat:3 ~unit_:Pipeline.FPU [ fid fa ] [ rid rd ]
  | Cvt_d_s (fd, fa) | Cvt_s_d (fd, fa) ->
      mk ~lat:2 ~unit_:Pipeline.FPU [ fid fa ] [ fid fd ]
  | Cmp (a, b) -> mk ~lat:cfg.cmp_latency [ rid a; rid b ] [ cc_id ]
  | Cmpi (a, _) -> mk ~lat:cfg.cmp_latency [ rid a ] [ cc_id ]
  | Br_cc (_, _) -> mk ~unit_:Pipeline.BRU [ cc_id ] []
  | Br_cmp (_, a, b, _) -> mk ~unit_:Pipeline.BRU [ rid a; rid b ] []
  | Fbr (_, _) -> mk ~unit_:Pipeline.BRU [ fcc_id ] []
  | J _ -> mk ~unit_:Pipeline.BRU [] []
  | Call (_, _) -> mk ~unit_:Pipeline.BRU [] [ rid omni_ra ]
  | Call_ind (r, _) -> mk ~unit_:Pipeline.BRU [ rid r ] [ rid omni_ra ]
  | Jmp_ind r -> mk ~unit_:Pipeline.BRU [ rid r ] []
  | Guard_data r | Guard_code r -> mk ~lat:1 [ rid r ] []
  | Cc_to_reg (_, rd) -> mk [ cc_id ] [ rid rd ]
  | Trapi _ -> mk [] []
  | Hcall _ -> mk [] [ rid (map_reg 1) ]
  | Nop -> mk [] []

let pipeline_config cfg : Pipeline.config =
  {
    Pipeline.issue_width = cfg.issue_width;
    dual_issue_rule =
      (fun a b ->
        match (a, b) with
        | Pipeline.IU, Pipeline.FPU | Pipeline.FPU, Pipeline.IU -> true
        | Pipeline.IU, Pipeline.BRU | Pipeline.FPU, Pipeline.BRU -> true
        | _ -> false);
    taken_branch_penalty = cfg.taken_branch_penalty;
  }

(* --- printing (debugging / golden tests) --- *)

let rn r =
  if r = 0 then "zero"
  else if r = r_sfi_data then "sd"
  else if r = r_sfi_code then "sc"
  else if r = r_data_mask then "dm"
  else if r = r_data_base then "db"
  else if r = r_code_mask then "cm"
  else if r = r_code_base then "cb"
  else if r = r_gp then "gp"
  else if r >= 8 && r <= 23 then Printf.sprintf "o%d" (r - 8)
  else Printf.sprintf "t%d" r

let fn f = Printf.sprintf "f%d" f

let string_of_instr (i : instr) =
  let p = Printf.sprintf in
  match i with
  | Alu (op, rd, ra, rb) -> p "%s %s, %s, %s" (VI.binop_name op) (rn rd) (rn ra) (rn rb)
  | Alui (op, rd, ra, imm) -> p "%si %s, %s, %d" (VI.binop_name op) (rn rd) (rn ra) imm
  | Alu_record (op, rd, ra, rb) ->
      p "%s. %s, %s, %s" (VI.binop_name op) (rn rd) (rn ra) (rn rb)
  | Lui (rd, v) -> p "lui %s, %d" (rn rd) v
  | Load (w, s, rd, b, d) -> p "%s %s, %d(%s)" (VI.load_name w s) (rn rd) d (rn b)
  | Store (w, rv, b, d) -> p "%s %s, %d(%s)" (VI.store_name w) (rn rv) d (rn b)
  | Load_x (w, s, rd, a, b) ->
      p "%sx %s, %s(%s)" (VI.load_name w s) (rn rd) (rn a) (rn b)
  | Store_x (w, rv, a, b) -> p "%sx %s, %s(%s)" (VI.store_name w) (rn rv) (rn a) (rn b)
  | Fload (fd, b, d) -> p "fld %s, %d(%s)" (fn fd) d (rn b)
  | Fstore (fv, b, d) -> p "fsd %s, %d(%s)" (fn fv) d (rn b)
  | Fload_s (fd, b, d) -> p "fls %s, %d(%s)" (fn fd) d (rn b)
  | Fstore_s (fv, b, d) -> p "fss %s, %d(%s)" (fn fv) d (rn b)
  | Fload_x (fd, a, b) -> p "fldx %s, %s(%s)" (fn fd) (rn a) (rn b)
  | Fstore_x (fv, a, b) -> p "fsdx %s, %s(%s)" (fn fv) (rn a) (rn b)
  | Fld_pool (fd, i) -> p "fldc %s, pool[%d]" (fn fd) i
  | Fop (op, pr, fd, fa, fb) ->
      p "%s.%s %s, %s, %s" (VI.fbinop_name op) (VI.prec_suffix pr) (fn fd)
        (fn fa) (fn fb)
  | Fun1 (op, fd, fa) -> p "%s %s, %s" (VI.funop_name op) (fn fd) (fn fa)
  | Fcmp (op, fa, fb) -> p "%s %s, %s" (VI.fcmp_name op) (fn fa) (fn fb)
  | Fcc_to_reg rd -> p "mffcc %s" (rn rd)
  | Cvt_f_i (fd, ra) -> p "cvt.d.w %s, %s" (fn fd) (rn ra)
  | Cvt_i_f (rd, fa) -> p "cvt.w.d %s, %s" (rn rd) (fn fa)
  | Cvt_d_s (fd, fa) -> p "cvt.d.s %s, %s" (fn fd) (fn fa)
  | Cvt_s_d (fd, fa) -> p "cvt.s.d %s, %s" (fn fd) (fn fa)
  | Cmp (a, b) -> p "cmp %s, %s" (rn a) (rn b)
  | Cmpi (a, i) -> p "cmpi %s, %d" (rn a) i
  | Br_cc (c, l) -> p "b%s L%d" (VI.cond_name c) l
  | Br_cmp (c, a, b, l) -> p "b%s %s, %s, L%d" (VI.cond_name c) (rn a) (rn b) l
  | Fbr (f, l) -> p "fb%s L%d" (if f then "t" else "f") l
  | J l -> p "j L%d" l
  | Call (l, ret) -> p "call L%d (ret 0x%x)" l ret
  | Call_ind (r, ret) -> p "callr %s (ret 0x%x)" (rn r) ret
  | Jmp_ind r -> p "jr %s" (rn r)
  | Guard_data r -> p "guardd %s" (rn r)
  | Guard_code r -> p "guardc %s" (rn r)
  | Cc_to_reg (c, rd) -> p "set%s %s" (VI.cond_name c) (rn rd)
  | Trapi n -> p "trap %d" n
  | Hcall n -> p "hcall %d" n
  | Nop -> "nop"

(* --- structural identity of translated programs ---

   Translation is a pure function of (exe, cfg, mode, opts), so two
   translations of the same inputs are structurally equal. The serving
   layer relies on this to state its cache invariant: a cached program is
   observationally identical to a fresh translation. [Stdlib.compare]
   rather than [(=)] so NaN pool constants compare equal to themselves. *)

let equal_program (a : program) (b : program) = Stdlib.compare a b = 0

let fingerprint_program (p : program) : Omni_util.Fnv64.t =
  Omni_util.Fnv64.digest_string
    (Marshal.to_string (p.cfg, p.code, p.entry, p.addr_map, p.pool, p.n_omni)
       [])
