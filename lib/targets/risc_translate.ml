(* Load-time translator: OmniVM -> parameterized RISC target.

   Responsibilities (paper sections 3-4):
   - one-or-more native instructions per OmniVM instruction, with every
     extra instruction tagged by why it exists (Figure 1's categories:
     addr / cmp / ldi / bnop / sfi),
   - software fault isolation on unsafe stores and indirect branches
     (sandboxing by default; guard/trap mode for the virtual exception
     model; statically safe accesses — sp-relative with small offsets and
     constant in-segment addresses — are left unchecked),
   - translator optimizations: local instruction scheduling, branch delay
     slot filling, global-pointer addressing, and a peephole pass
     (PowerPC record-form compare folding for the vendor-compiler tier).

   The [Native] modes reuse this machinery as compiler baselines: no SFI,
   and for the [Cc] tier an effectively unlimited immediate field (modeling
   the vendor compiler's superior instruction selection and constant
   handling) plus critical-path scheduling.

   Discipline: each OmniVM instruction's translation contains exactly one
   [Core]-tagged native instruction, so dynamic [Core] counts equal dynamic
   OmniVM instruction counts. *)

open Risc
module VI = Omnivm.Instr
module W = Omni_util.Word32
module L = Omnivm.Layout
module Trace = Omni_obs.Trace

type tconfig = {
  cfg : cfg;
  mode : Machine.mode;
  opts : Machine.topts;
  mutable sfi_cache : (int * int * bool) option;
      (* (native base reg, displacement, boxed?) currently held sandboxed in
         the dedicated data register; used by the sfi_opt guard-zone
         optimization (paper 4.4) *)
}

(* Chunk emitter for one OmniVM instruction's translation. *)
type emitter = {
  mutable slots : slot list; (* reversed *)
  mutable pool : float list; (* reversed *)
  mutable pool_n : int;
  decl : Machine.sfi_decl; (* shared across chunks; masking counts *)
}

let emit e origin i = e.slots <- mk origin i :: e.slots

let pool_const e v =
  (* small pool; linear search for sharing *)
  let rec find i = function
    | [] ->
        e.pool <- v :: e.pool;
        e.pool_n <- e.pool_n + 1;
        e.pool_n - 1
    | x :: rest ->
        if Float.equal x v then e.pool_n - 1 - i else find (i + 1) rest
  in
  find 0 e.pool

let fits bits v = v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1)

(* Effective immediate width: the vendor-compiler tier is modeled as having
   no immediate-size limitations (perfect constant handling). *)
let eff_bits t =
  match t.mode with Machine.Native Machine.Cc -> 30 | _ -> t.cfg.imm_bits

let gp_value t = L.data_base + (1 lsl (t.cfg.imm_bits - 1))

let use_gp t = t.opts.Machine.use_gp

let sfi_mode t =
  match t.mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.mode
  | Machine.Native _ -> Omni_sfi.Policy.Off

let protect_reads t =
  match t.mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.protect_reads
  | Machine.Native _ -> false

let sfi_pad t =
  match t.mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.pad
  | Machine.Native _ -> Omni_sfi.Policy.Pad_none

(* Effective guard-zone bound for statically-safe displacements; widened
   under [Pad_guard8]. *)
let guard_bound t = Omni_sfi.Policy.guard_zone_of_pad (sfi_pad t)

(* Padding of the sandboxing sequence (the instruction-padding paper's
   knob). Called between the mask/box pair and the protected memory op;
   never used on the sp re-sandboxing triple (verified by adjacency). *)
let emit_pad t e =
  match sfi_pad t with
  | Omni_sfi.Policy.Pad_none | Omni_sfi.Policy.Pad_guard8 -> ()
  | Omni_sfi.Policy.Pad_nop -> emit e Machine.Sfi Nop
  | Omni_sfi.Policy.Pad_align ->
      (* pad so the protected op lands on an even slot of this chunk *)
      if List.length e.slots land 1 = 1 then emit e Machine.Sfi Nop

(* Materialize a 32-bit constant into [rd]. The final instruction carries
   [last_origin]; preceding high-part instructions carry [hi_origin]. *)
let mat_imm t e ~hi_origin ~last_origin rd v =
  if fits (eff_bits t) v then emit e last_origin (Alui (VI.Add, rd, r_zero, v))
  else begin
    let low_bits = t.cfg.imm_bits - 3 in
    let low = v land ((1 lsl low_bits) - 1) in
    let high = W.of_int (v - low) in
    emit e hi_origin (Lui (rd, high));
    emit e last_origin (Alui (VI.Or, rd, rd, low))
  end

(* Compute base+disp into a usable (base_reg, small_disp) pair for a memory
   access; emits address-expansion instructions as needed. *)
let mem_addr t e ~origin base disp =
  let bits = eff_bits t in
  if base = r_zero then begin
    (* absolute address *)
    if fits bits disp then (r_zero, disp)
    else if use_gp t && fits t.cfg.imm_bits (disp - gp_value t) then begin
      Trace.count "translate.gp_uses";
      (r_gp, disp - gp_value t)
    end
    else begin
      let low_bits = t.cfg.imm_bits - 3 in
      let low = disp land ((1 lsl low_bits) - 1) in
      emit e origin (Lui (r_scratch1, W.of_int (disp - low)));
      (r_scratch1, low)
    end
  end
  else if fits bits disp then (base, disp)
  else begin
    let low_bits = t.cfg.imm_bits - 3 in
    let low = disp land ((1 lsl low_bits) - 1) in
    emit e origin (Lui (r_scratch1, W.of_int (disp - low)));
    emit e origin (Alu (VI.Add, r_scratch1, r_scratch1, base));
    (r_scratch1, low)
  end

(* Statically safe store addresses need no SFI check. *)
let store_statically_safe t base disp =
  (base = omni_sp && disp >= 0 && disp < guard_bound t)
  || (base = r_zero && L.in_data disp)

(* Emit the SFI-protected (or direct) store of [emit_store : base -> disp ->
   unit] to address base+disp. *)
let sfi_store t e ~base ~disp ~(emit_store : core:bool -> int -> int -> unit) =
  if sfi_mode t = Omni_sfi.Policy.Off || store_statically_safe t base disp
  then begin
    let b, d = mem_addr t e ~origin:Machine.Addr base disp in
    emit_store ~core:true b d
  end
  else
  match sfi_mode t with
  | Omni_sfi.Policy.Off -> assert false
  | Omni_sfi.Policy.Sandbox
    when t.opts.Machine.sfi_opt
         && (match t.sfi_cache with
            | Some (b, d0, boxed) ->
                b = base && boxed && abs (disp - d0) < guard_bound t
            | None -> false) ->
      (* guard-zone reuse: the dedicated register already holds a sandboxed
         address for this base; a small displacement from it cannot leave
         the segment's guard zone, so no new check is needed *)
      Trace.count "translate.sfi_checks_elided";
      let d0 = match t.sfi_cache with Some (_, d, _) -> d | None -> 0 in
      emit_store ~core:true r_sfi_data (disp - d0)
  | Omni_sfi.Policy.Sandbox ->
      Trace.count "translate.sfi_checks";
      (* address into a single register, then mask into the segment *)
      let asrc =
        if disp = 0 then base
        else if fits (eff_bits t) disp then begin
          emit e Machine.Sfi (Alui (VI.Add, r_sfi_data, base, disp));
          r_sfi_data
        end
        else begin
          mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
            r_scratch1 disp;
          emit e Machine.Sfi (Alu (VI.Add, r_sfi_data, base, r_scratch1));
          r_sfi_data
        end
      in
      e.decl.Machine.data_masks <- e.decl.Machine.data_masks + 1;
      emit e Machine.Sfi (Alu (VI.And, r_sfi_data, asrc, r_data_mask));
      if t.cfg.has_indexed then begin
        (* indexed addressing shortens the PPC check sequence (paper 4.3) *)
        emit_pad t e;
        emit_store ~core:true (-1) (-1) (* special-cased by caller *);
        t.sfi_cache <- (if t.opts.Machine.sfi_opt then Some (base, disp, false)
                        else None)
      end
      else begin
        emit e Machine.Sfi (Alu (VI.Or, r_sfi_data, r_sfi_data, r_data_base));
        emit_pad t e;
        emit_store ~core:true r_sfi_data 0;
        t.sfi_cache <- (if t.opts.Machine.sfi_opt then Some (base, disp, true)
                        else None)
      end
  | Omni_sfi.Policy.Guard ->
      Trace.count "translate.sfi_checks";
      let areg =
        if disp = 0 then base
        else begin
          (if fits (eff_bits t) disp then
             emit e Machine.Sfi (Alui (VI.Add, r_scratch1, base, disp))
           else begin
             mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
               r_scratch1 disp;
             emit e Machine.Sfi (Alu (VI.Add, r_scratch1, r_scratch1, base))
           end);
          r_scratch1
        end
      in
      emit e Machine.Sfi (Guard_data areg);
      emit_store ~core:true areg 0

(* Read protection (optional; paper section 1 cites it as an SFI capability
   Omniware had not incorporated): route unsafe loads through the same
   dedicated-register discipline as stores. *)
let sfi_load t e ~base ~disp ~(emit_load : int -> int -> unit) =
  if
    sfi_mode t = Omni_sfi.Policy.Off
    || (not (protect_reads t))
    || store_statically_safe t base disp
    || (base = r_gp)
    || (base = r_zero && L.in_data disp)
  then begin
    let b, d = mem_addr t e ~origin:Machine.Addr base disp in
    emit_load b d
  end
  else
    match sfi_mode t with
    | Omni_sfi.Policy.Off -> assert false
    | Omni_sfi.Policy.Sandbox ->
        let asrc =
          if disp = 0 then base
          else if fits (eff_bits t) disp then begin
            emit e Machine.Sfi (Alui (VI.Add, r_sfi_data, base, disp));
            r_sfi_data
          end
          else begin
            mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
              r_scratch1 disp;
            emit e Machine.Sfi (Alu (VI.Add, r_sfi_data, base, r_scratch1));
            r_sfi_data
          end
        in
        e.decl.Machine.data_masks <- e.decl.Machine.data_masks + 1;
        emit e Machine.Sfi (Alu (VI.And, r_sfi_data, asrc, r_data_mask));
        emit e Machine.Sfi (Alu (VI.Or, r_sfi_data, r_sfi_data, r_data_base));
        emit_pad t e;
        emit_load r_sfi_data 0;
        t.sfi_cache <- None
    | Omni_sfi.Policy.Guard ->
        let areg =
          if disp = 0 then base
          else begin
            (if fits (eff_bits t) disp then
               emit e Machine.Sfi (Alui (VI.Add, r_scratch1, base, disp))
             else begin
               mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
                 r_scratch1 disp;
               emit e Machine.Sfi (Alu (VI.Add, r_scratch1, r_scratch1, base))
             end);
            r_scratch1
          end
        in
        emit e Machine.Sfi (Guard_data areg);
        emit_load areg 0

(* Sandbox an indirect branch target into a register safe to jump through. *)
let sfi_code_target t e reg =
  match sfi_mode t with
  | Omni_sfi.Policy.Off -> reg
  | Omni_sfi.Policy.Sandbox ->
      e.decl.Machine.code_masks <- e.decl.Machine.code_masks + 1;
      emit e Machine.Sfi (Alu (VI.And, r_sfi_code, reg, r_code_mask));
      emit e Machine.Sfi (Alu (VI.Or, r_sfi_code, r_sfi_code, r_code_base));
      emit_pad t e;
      r_sfi_code
  | Omni_sfi.Policy.Guard ->
      emit e Machine.Sfi (Guard_code reg);
      reg

(* Re-establish the sp-in-segment invariant after an unsafe sp write. *)
let resandbox_sp t e =
  match sfi_mode t with
  | Omni_sfi.Policy.Off -> ()
  | Omni_sfi.Policy.Sandbox ->
      emit e Machine.Sfi (Alu (VI.And, omni_sp, omni_sp, r_data_mask));
      emit e Machine.Sfi (Alu (VI.Or, omni_sp, omni_sp, r_data_base))
  | Omni_sfi.Policy.Guard -> emit e Machine.Sfi (Guard_data omni_sp)

(* Does this OmniVM instruction leave sp safe without re-sandboxing? *)
let sp_write_safe t (ins : int VI.t) =
  match ins with
  | VI.Binopi ((VI.Add | VI.Sub), rd, rs, imm)
    when rd = Omnivm.Reg.sp && rs = Omnivm.Reg.sp && abs imm < guard_bound t ->
      true
  | _ -> false

let writes_sp (ins : int VI.t) =
  match ins with
  | VI.Binop (_, rd, _, _) | VI.Binopi (_, rd, _, _) | VI.Li (rd, _)
  | VI.Load (_, _, rd, _, _) | VI.Ext (rd, _, _, _) | VI.Ins (rd, _, _, _)
  | VI.Cvt_i_f (_, rd, _) | VI.Fcmp (_, _, rd, _, _) ->
      rd = Omnivm.Reg.sp
  | VI.Jalr (rd, _) -> rd = Omnivm.Reg.sp
  | _ -> false

(* --- branches --- *)

(* Negate-for-swap helpers live in Omnivm.Instr. Branch label operands hold
   OMNI INSTRUCTION INDICES during chunk construction; they are patched to
   native indices at the end. *)

let omni_index_of_addr addr =
  let off = addr - L.code_base in
  if off < 0 || off land 3 <> 0 then None else Some (off / 4)

let unsigned_cond = function
  | VI.Ltu | VI.Leu | VI.Gtu | VI.Geu -> true
  | _ -> false

let translate_branch t e c a b target =
  let a = map_reg a and b = map_reg b in
  match t.cfg.branch_model with
  | Fused_compare -> (
      match c with
      | VI.Eq | VI.Ne -> emit e Machine.Core (Br_cmp (c, a, b, target))
      | _ when b = r_zero && not (unsigned_cond c) ->
          emit e Machine.Core (Br_cmp (c, a, r_zero, target))
      | VI.Ltu | VI.Gtu | VI.Leu | VI.Geu | VI.Lt | VI.Gt | VI.Le | VI.Ge ->
          let slt x y =
            if unsigned_cond c then Alu (VI.Sltu, r_scratch1, x, y)
            else Alu (VI.Slt, r_scratch1, x, y)
          in
          let cmp_i, sense =
            match c with
            | VI.Lt | VI.Ltu -> (slt a b, VI.Ne)
            | VI.Ge | VI.Geu -> (slt a b, VI.Eq)
            | VI.Gt | VI.Gtu -> (slt b a, VI.Ne)
            | VI.Le | VI.Leu -> (slt b a, VI.Eq)
            | VI.Eq | VI.Ne -> assert false
          in
          emit e Machine.Cmp cmp_i;
          emit e Machine.Core (Br_cmp (sense, r_scratch1, r_zero, target)))
  | Cond_codes | Cond_reg ->
      if b = r_zero then emit e Machine.Cmp (Cmpi (a, 0))
      else emit e Machine.Cmp (Cmp (a, b));
      emit e Machine.Core (Br_cc (c, target))

let rec translate_branch_imm t e c a imm target =
  let an = map_reg a in
  if imm = 0 then translate_branch t e c a 0 target
  else
    match t.cfg.branch_model with
    | Fused_compare -> (
        match c with
        | VI.Eq | VI.Ne ->
            mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
              r_scratch2 imm;
            emit e Machine.Core (Br_cmp (c, an, r_scratch2, target))
        | VI.Lt | VI.Ge when fits (eff_bits t) imm ->
            emit e Machine.Cmp (Alui (VI.Slt, r_scratch1, an, imm));
            let sense = if c = VI.Lt then VI.Ne else VI.Eq in
            emit e Machine.Core (Br_cmp (sense, r_scratch1, r_zero, target))
        | VI.Ltu | VI.Geu when fits (eff_bits t) imm ->
            emit e Machine.Cmp (Alui (VI.Sltu, r_scratch1, an, imm));
            let sense = if c = VI.Ltu then VI.Ne else VI.Eq in
            emit e Machine.Core (Br_cmp (sense, r_scratch1, r_zero, target))
        | VI.Le | VI.Gt when imm <> W.max_int32 && fits (eff_bits t) (imm + 1)
          ->
            emit e Machine.Cmp (Alui (VI.Slt, r_scratch1, an, imm + 1));
            let sense = if c = VI.Le then VI.Ne else VI.Eq in
            emit e Machine.Core (Br_cmp (sense, r_scratch1, r_zero, target))
        | _ ->
            mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
              r_scratch2 imm;
            translate_branch_reg2 t e c an r_scratch2 target)
    | Cond_codes | Cond_reg ->
        if fits t.cfg.imm_bits imm || fits (eff_bits t) imm then begin
          emit e Machine.Cmp (Cmpi (an, imm));
          emit e Machine.Core (Br_cc (c, target))
        end
        else begin
          mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
            r_scratch2 imm;
          emit e Machine.Cmp (Cmp (an, r_scratch2));
          emit e Machine.Core (Br_cc (c, target))
        end

(* like translate_branch but with pre-mapped native registers *)
and translate_branch_reg2 t e c a b target =
  match t.cfg.branch_model with
  | Fused_compare -> (
      match c with
      | VI.Eq | VI.Ne -> emit e Machine.Core (Br_cmp (c, a, b, target))
      | _ ->
          let slt x y =
            if unsigned_cond c then Alu (VI.Sltu, r_scratch1, x, y)
            else Alu (VI.Slt, r_scratch1, x, y)
          in
          let cmp_i, sense =
            match c with
            | VI.Lt | VI.Ltu -> (slt a b, VI.Ne)
            | VI.Ge | VI.Geu -> (slt a b, VI.Eq)
            | VI.Gt | VI.Gtu -> (slt b a, VI.Ne)
            | VI.Le | VI.Leu -> (slt b a, VI.Eq)
            | VI.Eq | VI.Ne -> assert false
          in
          emit e Machine.Cmp cmp_i;
          emit e Machine.Core (Br_cmp (sense, r_scratch1, r_zero, target)))
  | Cond_codes | Cond_reg ->
      emit e Machine.Cmp (Cmp (a, b));
      emit e Machine.Core (Br_cc (c, target))

(* --- per-instruction translation --- *)

exception Translate_error of string

let terror fmt = Printf.ksprintf (fun s -> raise (Translate_error s)) fmt

(* Native registers an OmniVM instruction writes (for sfi-cache
   invalidation). Conservative: host calls clobber the result register. *)
let omni_defs (ins : int VI.t) : int list =
  match ins with
  | VI.Binop (_, rd, _, _) | VI.Binopi (_, rd, _, _) | VI.Li (rd, _)
  | VI.Load (_, _, rd, _, _) | VI.Ext (rd, _, _, _) | VI.Ins (rd, _, _, _)
  | VI.Cvt_i_f (_, rd, _) | VI.Fcmp (_, _, rd, _, _) ->
      [ map_reg rd ]
  | VI.Jal _ -> [ omni_ra ]
  | VI.Jalr (rd, _) -> [ map_reg rd; omni_ra ]
  | VI.Hcall _ -> [ map_reg 1 ]
  | VI.Store _ | VI.Fstore _ | VI.Fload _ | VI.Fbinop _ | VI.Funop _
  | VI.Fli _ | VI.Cvt_f_i _ | VI.Cvt_d_s _ | VI.Cvt_s_d _ | VI.Br _
  | VI.Bri _ | VI.J _ | VI.Jr _ | VI.Trap _ | VI.Nop ->
      []

(* Translate one OmniVM instruction (at omni index [idx]) into [e].
   Branch/jump targets are encoded as omni instruction indices. *)
let translate_instr t e ~idx (ins : int VI.t) =
  let m = map_reg in
  let ret_addr = Omnivm.Exe.code_addr (idx + 1) in
  let target_of addr =
    match omni_index_of_addr addr with
    | Some i -> i
    | None -> terror "branch to non-code address 0x%x" addr
  in
  (match ins with
  | VI.Nop -> emit e Machine.Core Nop
  | VI.Li (rd, v) ->
      (* addresses near the global pointer can be formed in one instr *)
      if (not (fits (eff_bits t) v))
         && use_gp t
         && fits t.cfg.imm_bits (v - gp_value t)
      then begin
        Trace.count "translate.gp_uses";
        emit e Machine.Core (Alui (VI.Add, m rd, r_gp, v - gp_value t))
      end
      else
        mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Core (m rd) v
  | VI.Binop (op, rd, rs1, rs2) -> (
      match (op, t.cfg.branch_model) with
      | (VI.Slt | VI.Sltu), (Cond_codes | Cond_reg) ->
          emit e Machine.Cmp (Cmp (m rs1, m rs2));
          let c = if op = VI.Slt then VI.Lt else VI.Ltu in
          emit e Machine.Core (Cc_to_reg (c, m rd))
      | _ -> emit e Machine.Core (Alu (op, m rd, m rs1, m rs2)))
  | VI.Binopi (op, rd, rs1, imm) -> (
      match (op, t.cfg.branch_model) with
      | (VI.Slt | VI.Sltu), (Cond_codes | Cond_reg) ->
          if fits (eff_bits t) imm then emit e Machine.Cmp (Cmpi (m rs1, imm))
          else begin
            mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
              r_scratch2 imm;
            emit e Machine.Cmp (Cmp (m rs1, r_scratch2))
          end;
          let c = if op = VI.Slt then VI.Lt else VI.Ltu in
          emit e Machine.Core (Cc_to_reg (c, m rd))
      | _ ->
          if fits (eff_bits t) imm then
            emit e Machine.Core (Alui (op, m rd, m rs1, imm))
          else begin
            mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi
              r_scratch2 imm;
            emit e Machine.Core (Alu (op, m rd, m rs1, r_scratch2))
          end)
  | VI.Load (w, signed, rd, base, off) ->
      sfi_load t e ~base:(m base) ~disp:off ~emit_load:(fun b d ->
          emit e Machine.Core (Load (w, signed, m rd, b, d)))
  | VI.Store (w, rv, base, off) ->
      sfi_store t e ~base:(m base) ~disp:off ~emit_store:(fun ~core b d ->
          ignore core;
          if b = -1 then
            (* PPC indexed sandbox form *)
            emit e Machine.Core (Store_x (w, m rv, r_data_base, r_sfi_data))
          else emit e Machine.Core (Store (w, m rv, b, d)))
  | VI.Fload (prec, fd, base, off) ->
      sfi_load t e ~base:(m base) ~disp:off ~emit_load:(fun b d ->
          match prec with
          | VI.Double -> emit e Machine.Core (Fload (fd, b, d))
          | VI.Single -> emit e Machine.Core (Fload_s (fd, b, d)))
  | VI.Fstore (prec, fv, base, off) ->
      sfi_store t e ~base:(m base) ~disp:off ~emit_store:(fun ~core b d ->
          ignore core;
          if b = -1 then emit e Machine.Core (Fstore_x (fv, r_data_base, r_sfi_data))
          else
            match prec with
            | VI.Double -> emit e Machine.Core (Fstore (fv, b, d))
            | VI.Single -> emit e Machine.Core (Fstore_s (fv, b, d)))
  | VI.Fbinop (op, prec, fd, fs1, fs2) ->
      emit e Machine.Core (Fop (op, prec, fd, fs1, fs2))
  | VI.Funop (op, _prec, fd, fs) -> emit e Machine.Core (Fun1 (op, fd, fs))
  | VI.Fcmp (op, _prec, rd, fs1, fs2) ->
      emit e Machine.Cmp (Fcmp (op, fs1, fs2));
      emit e Machine.Core (Fcc_to_reg (m rd))
  | VI.Fli (_prec, fd, v) ->
      let i = pool_const e v in
      emit e Machine.Core (Fld_pool (fd, i))
  | VI.Cvt_f_i (_prec, fd, rs) -> emit e Machine.Core (Cvt_f_i (fd, m rs))
  | VI.Cvt_i_f (_prec, rd, fs) -> emit e Machine.Core (Cvt_i_f (m rd, fs))
  | VI.Cvt_d_s (fd, fs) -> emit e Machine.Core (Cvt_d_s (fd, fs))
  | VI.Cvt_s_d (fd, fs) -> emit e Machine.Core (Cvt_s_d (fd, fs))
  | VI.Br (c, a, b, addr) -> translate_branch t e c a b (target_of addr)
  | VI.Bri (c, a, imm, addr) ->
      translate_branch_imm t e c a imm (target_of addr)
  | VI.J addr -> emit e Machine.Core (J (target_of addr))
  | VI.Jal addr -> emit e Machine.Core (Call (target_of addr, ret_addr))
  | VI.Jr rs ->
      let tr = sfi_code_target t e (m rs) in
      emit e Machine.Core (Jmp_ind tr)
  | VI.Jalr (rd, rs) ->
      if rd = Omnivm.Reg.ra then begin
        let tr = sfi_code_target t e (m rs) in
        emit e Machine.Core (Call_ind (tr, ret_addr))
      end
      else begin
        (* unusual link register: save/restore ra around the call *)
        emit e Machine.Addr (Alui (VI.Add, r_scratch2, omni_ra, 0));
        let tr = sfi_code_target t e (m rs) in
        emit e Machine.Core (Call_ind (tr, ret_addr));
        emit e Machine.Addr (Alui (VI.Add, m rd, omni_ra, 0));
        emit e Machine.Addr (Alui (VI.Add, omni_ra, r_scratch2, 0))
      end
  | VI.Ext (rd, rs, pos, len) ->
      (* rd := (rs << (32-8(pos+len))) >>u (32-8len): shifts always fit *)
      let k1 = 32 - (8 * (pos + len)) in
      let k2 = 32 - (8 * len) in
      if k1 = 0 then emit e Machine.Core (Alui (VI.Srl, m rd, m rs, k2 - k1))
      else begin
        emit e Machine.Addr (Alui (VI.Sll, r_scratch1, m rs, k1));
        emit e Machine.Core (Alui (VI.Srl, m rd, r_scratch1, k2))
      end
  | VI.Ins (rd, rs, pos, len) ->
      let mask = (1 lsl (8 * len)) - 1 in
      mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi r_scratch1
        (lnot (mask lsl (8 * pos)));
      emit e Machine.Addr (Alu (VI.And, m rd, m rd, r_scratch1));
      mat_imm t e ~hi_origin:Machine.Ldi ~last_origin:Machine.Ldi r_scratch1
        mask;
      emit e Machine.Addr (Alu (VI.And, r_scratch1, m rs, r_scratch1));
      if pos > 0 then
        emit e Machine.Addr (Alui (VI.Sll, r_scratch1, r_scratch1, 8 * pos));
      emit e Machine.Core (Alu (VI.Or, m rd, m rd, r_scratch1))
  | VI.Hcall n -> emit e Machine.Core (Hcall n)
  | VI.Trap n -> emit e Machine.Core (Trapi n));
  (* sp safety invariant *)
  if writes_sp ins && not (sp_write_safe t ins) then resandbox_sp t e;
  (* sfi-cache invalidation: the cached base register may have changed *)
  (match t.sfi_cache with
  | Some (b, _, _) when List.mem b (omni_defs ins) -> t.sfi_cache <- None
  | _ -> ())

(* --- record-form peephole (PowerPC, vendor tier) --- *)

let record_form_ok = function
  | VI.Add | VI.Sub | VI.And | VI.Or | VI.Xor | VI.Sll | VI.Srl | VI.Sra ->
      true
  | _ -> false

(* Fold a compare-with-zero into the instruction that computed the compared
   value (PowerPC record forms, xlc-style). The defining ALU need not be
   adjacent: we search back through the block as long as neither the
   compared register nor the condition register is touched in between. *)
let apply_record_forms (slots : slot list) : slot list =
  let arr = Array.of_list slots in
  let n = Array.length arr in
  let writes_reg r i =
    List.mem r (attrs ppc_cfg i).Pipeline.defs
  in
  let touches_cc i =
    let a = attrs ppc_cfg i in
    List.mem cc_id a.Pipeline.defs || List.mem cc_id a.Pipeline.uses
  in
  let drop = Array.make n false in
  for j = 0 to n - 1 do
    match arr.(j).i with
    | Cmpi (rc, 0) when j + 1 < n ->
        (* only when a conditional branch consumes it next *)
        (match arr.(j + 1).i with
        | Br_cc _ ->
            let rec back k =
              if k < 0 then ()
              else
                match arr.(k).i with
                | Alu (op, rd, ra, rb) when rd = rc && record_form_ok op ->
                    arr.(k) <- { (arr.(k)) with i = Alu_record (op, rd, ra, rb) };
                    drop.(j) <- true
                | i when writes_reg rc i || touches_cc i -> ()
                | _ -> back (k - 1)
            in
            back (j - 1)
        | _ -> ())
    | _ -> ()
  done;
  let out = ref [] in
  for j = n - 1 downto 0 do
    if not drop.(j) then out := arr.(j) :: !out
  done;
  !out

(* --- whole-module translation --- *)

let leaders (exe : Omnivm.Exe.t) : bool array =
  let n = Array.length exe.Omnivm.Exe.text in
  let lead = Array.make n false in
  let mark addr =
    match omni_index_of_addr addr with
    | Some i when i >= 0 && i < n -> lead.(i) <- true
    | _ -> ()
  in
  if n > 0 then lead.(0) <- true;
  mark exe.Omnivm.Exe.entry;
  List.iter (fun (_, addr) -> mark addr) exe.Omnivm.Exe.symbols;
  Array.iteri
    (fun i ins ->
      (match VI.label ins with Some addr -> mark addr | None -> ());
      match ins with
      | VI.Br _ | VI.Bri _ | VI.J _ | VI.Jal _ | VI.Jr _ | VI.Jalr _
      | VI.Trap _ ->
          if i + 1 < n then lead.(i + 1) <- true
      | _ -> ())
    exe.Omnivm.Exe.text;
  lead

let is_barrier_slot (s : slot) =
  match s.i with
  | Hcall _ | Guard_data _ | Guard_code _ | Trapi _ -> true
  | _ -> false

let sched_info cfg : slot Sched.info =
  {
    Sched.attrs = (fun s -> attrs cfg s.i);
    is_barrier = is_barrier_slot;
  }

let translate (t : tconfig) (exe : Omnivm.Exe.t) : program =
  let text = exe.Omnivm.Exe.text in
  let n = Array.length text in
  let lead = leaders exe in
  let decl = Machine.new_sfi_decl () in
  let pool = { slots = []; pool = []; pool_n = 0; decl } in
  (* chunk per omni instruction; the constant pool threads through *)
  let chunks = Array.make n [] in
  for i = 0 to n - 1 do
    if lead.(i) then t.sfi_cache <- None;
    let e = { slots = []; pool = pool.pool; pool_n = pool.pool_n; decl } in
    translate_instr t e ~idx:i text.(i);
    pool.pool <- e.pool;
    pool.pool_n <- e.pool_n;
    chunks.(i) <- List.rev e.slots
  done;
  (* group into blocks of omni indices *)
  let blocks = ref [] in
  let cur = ref [] in
  for i = n - 1 downto 0 do
    cur := i :: !cur;
    if lead.(i) then begin
      blocks := !cur :: !blocks;
      cur := []
    end
  done;
  (* the downward scan already leaves blocks in ascending order *)
  let blocks = !blocks in
  (* process each block: peephole, schedule, delay slots *)
  let quality =
    match t.mode with
    | Machine.Native Machine.Cc -> Sched.Critical_path
    | _ -> Sched.Greedy
  in
  let info = sched_info t.cfg in
  let out = ref [] in
  let out_n = ref 0 in
  let addr_map = Array.make n (-1) in
  let emit_out s =
    out := s :: !out;
    incr out_n
  in
  List.iter
    (fun omni_indices ->
      match omni_indices with
      | [] -> ()
      | first :: _ ->
          addr_map.(first) <- !out_n;
          let slots = List.concat_map (fun i -> chunks.(i)) omni_indices in
          let slots =
            if t.opts.Machine.peephole && t.cfg.branch_model = Cond_reg then
              match t.mode with
              | Machine.Native Machine.Cc ->
                  let before = List.length slots in
                  let slots' =
                    Trace.timed "pass.peephole" (fun () ->
                        apply_record_forms slots)
                  in
                  Trace.count ~by:(before - List.length slots')
                    "translate.peephole_folds";
                  slots'
              | _ -> slots
            else slots
          in
          (* split body / trailing control *)
          let rec split acc = function
            | [ s ] when is_control s.i -> (List.rev acc, Some s)
            | [] -> (List.rev acc, None)
            | s :: rest -> split (s :: acc) rest
          in
          let body, ctrl = split [] slots in
          let body = Array.of_list body in
          let body =
            if t.opts.Machine.schedule then
              Trace.timed "pass.schedule" (fun () ->
                  Sched.schedule_body info ~quality body)
            else body
          in
          (match ctrl with
          | None -> Array.iter emit_out body
          | Some c ->
              if t.cfg.has_delay_slot then begin
                let body, filler =
                  if t.opts.Machine.fill_delay_slots then
                    Trace.timed "pass.delay_slot" (fun () ->
                        Sched.fill_delay_slot info
                          ~branch_attrs:(attrs t.cfg c.i) body)
                  else (body, None)
                in
                Array.iter emit_out body;
                emit_out c;
                match filler with
                | Some f ->
                    Trace.count "translate.delay_slots_filled";
                    emit_out f
                | None ->
                    Trace.count "translate.delay_slot_nops";
                    emit_out (mk Machine.Bnop Nop)
              end
              else begin
                Array.iter emit_out body;
                emit_out c
              end))
    blocks;
  let code = Array.of_list (List.rev !out) in
  (* patch branch targets: omni index -> native index *)
  let patch_target i =
    if i < 0 || i >= n || addr_map.(i) < 0 then
      terror "branch targets non-leader omni instruction %d" i
    else addr_map.(i)
  in
  Array.iteri
    (fun idx s ->
      let i' =
        match s.i with
        | Br_cc (c, l) -> Br_cc (c, patch_target l)
        | Br_cmp (c, a, b, l) -> Br_cmp (c, a, b, patch_target l)
        | Fbr (f, l) -> Fbr (f, patch_target l)
        | J l -> J (patch_target l)
        | Call (l, r) -> Call (patch_target l, r)
        | i -> i
      in
      code.(idx) <- { s with i = i' })
    code;
  let entry =
    match omni_index_of_addr exe.Omnivm.Exe.entry with
    | Some i when i >= 0 && i < n && addr_map.(i) >= 0 -> addr_map.(i)
    | _ -> terror "bad entry point"
  in
  {
    cfg = t.cfg;
    code;
    entry;
    addr_map;
    pool = Array.of_list (List.rev pool.pool);
    n_omni = n;
    decl;
  }
