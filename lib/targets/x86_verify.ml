(* SFI verification adapter for the x86 target.

   x86 sandboxing uses immediate masks through the eax scratch register:

       lea/mov eax, <address> ; and eax, data_mask ; or eax, data_base ;
       mov [eax], src

   so the state machine tracks eax: Dirty -> Masked (and with a segment
   mask immediate) -> Boxed (or with the matching base immediate). Stores
   through [eax] require Boxed-data; indirect branches through eax require
   Boxed-code. Absolute stores to in-segment constants (globals and the
   reserved register-home area) and small esp-relative stores are
   statically safe. State resets at control-flow instructions. *)

open X86
module V = Omni_sfi.Verifier
module L = Omnivm.Layout

type seg = Seg_data | Seg_code

type ded = Dirty | Masked of seg | Boxed of seg

let code_mask_imm = L.code_mask land lnot 3

let writes_reg r (i : instr) =
  List.mem r (attrs i).Pipeline.defs

let summarize_instr (eax_state : ded ref) (i : instr) : V.event =
  let event =
    match i with
    | Alu (And, R r, I m) when r = eax ->
        if m = L.data_mask then begin
          eax_state := Masked Seg_data;
          V.Sandbox_data_mask
        end
        else if m = code_mask_imm then begin
          eax_state := Masked Seg_code;
          V.Sandbox_code_mask
        end
        else begin
          eax_state := Dirty;
          V.Neutral
        end
    | Alu (Or, R r, I b) when r = eax -> (
        match !eax_state with
        | Masked Seg_data when b = L.data_base ->
            eax_state := Boxed Seg_data;
            V.Sandbox_data_box
        | Masked Seg_code when b = L.code_base ->
            eax_state := Boxed Seg_code;
            V.Sandbox_code_box
        | _ ->
            eax_state := Dirty;
            V.Neutral)
    (* esp discipline *)
    | Alu ((Add | Sub), R r, I k) when r = esp -> V.Sp_adjust_const k
    | Alu (And, R r, I m) when r = esp && m = L.data_mask -> V.Neutral
    | Alu (Or, R r, I b) when r = esp && b = L.data_base -> V.Neutral
    | i when writes_reg esp i && not (is_control i) ->
        V.Sp_clobber (string_of_instr i)
    (* stores *)
    | Mov (M m, _) | Store (_, m, _) | Fstore (_, _, m) -> (
        match (m.base, m.index) with
        | None, None when L.in_data m.disp -> V.Store_abs
        | Some r, None when r = esp ->
            V.Store_via_sp { disp = m.disp }
        | Some r, None when r = eax -> (
            match !eax_state with
            | Boxed Seg_data -> V.Store_via_dedicated { disp = m.disp }
            | _ -> V.Store_unsafe (string_of_instr i))
        | _ -> V.Store_unsafe (string_of_instr i))
    | Alu (_, M m, _) | Shift (_, M m, _) | Shiftv (_, M m, _) -> (
        (* read-modify-write memory operands *)
        match (m.base, m.index) with
        | None, None when L.in_data m.disp -> V.Store_abs
        | Some r, None when r = esp -> V.Store_via_sp { disp = m.disp }
        | _ -> V.Store_unsafe (string_of_instr i))
    (* indirect control flow *)
    | Jmp_ind x | Call_ind (x, _) -> (
        match x with
        | R r when r = eax && !eax_state = Boxed Seg_code ->
            V.Jump_via_dedicated
        | _ -> V.Jump_unsafe (string_of_instr i))
    | Guard_data _ | Guard_code _ -> V.Neutral
    | _ -> V.Neutral
  in
  (* any other write to eax dirties it *)
  (match i with
  | Alu ((And | Or), R r, I _) when r = eax -> ()
  | i when writes_reg eax i -> eax_state := Dirty
  | _ -> ());
  if is_control i then eax_state := Dirty;
  event

(* Neutralize sp-clobbers that are immediately re-sandboxed. *)
let summarize (p : program) : V.event array =
  let eax_state = ref Dirty in
  let events =
    Array.map (fun (s : slot) -> summarize_instr eax_state s.i) p.code
  in
  Array.iteri
    (fun i e ->
      match e with
      | V.Sp_clobber _
        when i + 2 < Array.length events
             && (match (p.code.(i + 1).i, p.code.(i + 2).i) with
                | Alu (And, R a, I m), Alu (Or, R b, I bs) ->
                    a = esp && m = L.data_mask && b = esp && bs = L.data_base
                | _ -> false) ->
          events.(i) <- V.Sp_resandboxed
      | V.Sp_clobber _
        when i + 1 < Array.length events
             && (match p.code.(i + 1).i with
                | Guard_data r -> r = esp
                | _ -> false) ->
          events.(i) <- V.Sp_resandboxed
      | _ -> ())
    events;
  events

let verify ?max_disp (p : program) = V.verify ?max_disp (summarize p)

(* Certifying verification: the same scan, returning the obligations the
   accepted stream established (see Risc_verify.certify). *)
let certify ?max_disp (p : program) :
    (Omni_sfi.Witness.obligation array, V.failure) result =
  V.certify ?max_disp (summarize p)
