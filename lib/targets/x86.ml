(* The x86 (Pentium) target.

   A two-address CISC with eight integer registers and memory operands.
   OmniVM register mapping (paper 3.2: "on the x86, some registers are
   mapped to memory locations"):

     omni r14 (sp) -> esp
     omni r1..r4   -> ecx, ebx, esi, edi      (arguments / results: hot)
     omni r15 (ra) -> ebp
     all other omni integer registers -> memory homes in the reserved
     runtime area at the bottom of the data segment
     eax, edx       -> translator scratch (also implicit in mul/div)

   Floating point: the Pentium's x87 is modeled as a flat 8-register FP
   file (fp0..fp7): omni f1..f6 map to fp0..fp5, fp6/fp7 are scratch, and
   the remaining omni float registers live in memory homes. The x87 stack
   discipline (FXCH scheduling) is abstracted away; its cost shows up in
   the model as FP operations issuing only in the U pipe (unpairable).

   Condition codes are modeled like the RISC targets: a compare records its
   operand pair, conditional jumps evaluate the condition. *)

module VI = Omnivm.Instr

type reg = int (* 0..7: eax ecx edx ebx esp ebp esi edi *)

let eax = 0
let ecx = 1
let edx = 2
let ebx = 3
let esp = 4
let ebp = 5
let esi = 6
let edi = 7

let reg_names = [| "eax"; "ecx"; "edx"; "ebx"; "esp"; "ebp"; "esi"; "edi" |]

(* Where an OmniVM integer register lives. *)
type home = Hreg of reg | Hmem of int (* absolute address *) | Hzero

let int_home (r : int) : home =
  if r = 0 then Hzero
  else if r = Omnivm.Reg.sp then Hreg esp
  else if r = Omnivm.Reg.ra then Hreg ebp
  else
    match r with
    | 1 -> Hreg ecx
    | 2 -> Hreg ebx
    | 3 -> Hreg esi
    | 4 -> Hreg edi
    | r -> Hmem (Omnivm.Layout.regsave_int_addr r)

type fhome = FHreg of int | FHmem of int

let float_home (f : int) : fhome =
  if f >= 1 && f <= 6 then FHreg (f - 1)
  else FHmem (Omnivm.Layout.regsave_float_addr f)

let fp_scratch1 = 6
let fp_scratch2 = 7

(* --- operands and instructions --- *)

type mem = {
  base : reg option;
  index : (reg * int) option; (* reg * scale (1,2,4,8) *)
  disp : int;
}

let mabs disp = { base = None; index = None; disp }
let mbase r disp = { base = Some r; index = None; disp }

type operand = R of reg | M of mem | I of int

type aluop = Add | Sub | And | Or | Xor

type shop = Shl | Shr | Sar

type instr =
  | Mov of operand * operand (* dst, src; not mem-to-mem *)
  | Load of VI.mem_width * bool * reg * mem (* movzx/movsx/mov load *)
  | Store of VI.mem_width * mem * operand (* src: R or I *)
  | Alu of aluop * operand * operand (* dst op= src *)
  | Shift of shop * operand * int
  | Shiftv of shop * operand * reg (* variable shift; count register *)
  | Imul of reg * operand
  | Idiv of operand * bool (* signed; implicit eax:edx; quotient eax, rem edx *)
  | Cdq
  | Lea of reg * mem
  | Cmp of operand * operand (* records pair for Jcc/Setcc *)
  | Setcc of VI.cond * reg (* rd := cond ? 1 : 0 (includes zero-extend) *)
  | Jcc of VI.cond * int
  | Jmp of int
  | Jmp_ind of operand (* omni code address *)
  | Call of int * int (* label, omni return address (-> ebp) *)
  | Call_ind of operand * int
  | Fop of VI.fbinop * VI.fprec * int * int * int (* flat-file pseudo-x87 *)
  | Fun1 of VI.funop * int * int
  | Fload of VI.fprec * int * mem
  | Fstore of VI.fprec * int * mem
  | Fld_pool of int * int
  | Fcmp of VI.fcmp * int * int (* sets fcc *)
  | Fcc_to_reg of reg
  | Cvt_f_i of int * operand (* fp := (double) int-operand *)
  | Cvt_i_f of reg * int
  | Guard_data of reg
  | Guard_code of reg
  | Trapi of int
  | Hcall of int
  | Nop

type slot = { i : instr; origin : Machine.origin }

let mk origin i = { i; origin }

type program = {
  code : slot array;
  entry : int;
  addr_map : int array;
  pool : float array;
  n_omni : int;
  decl : Machine.sfi_decl; (* declared SFI masking counts (certification) *)
}

let is_control = function
  | Jcc _ | Jmp _ | Jmp_ind _ | Call _ | Call_ind _ -> true
  | Mov _ | Load _ | Store _ | Alu _ | Shift _ | Shiftv _ | Imul _ | Idiv _ | Cdq
  | Lea _ | Cmp _ | Setcc _ | Fop _ | Fun1 _ | Fload _ | Fstore _
  | Fld_pool _ | Fcmp _ | Fcc_to_reg _ | Cvt_f_i _ | Cvt_i_f _
  | Guard_data _ | Guard_code _ | Trapi _ | Hcall _ | Nop ->
      false

(* --- pipeline attributes (Pentium-ish) --- *)

let rid r = r
let fid f = 32 + f
let cc_id = 64
let fcc_id = 65

let mem_uses (m : mem) =
  let b = match m.base with Some r -> [ rid r ] | None -> [] in
  let i = match m.index with Some (r, _) -> [ rid r ] | None -> [] in
  b @ i

let op_uses = function
  | R r -> [ rid r ]
  | M m -> mem_uses m
  | I _ -> []

let op_is_mem = function M _ -> true | R _ | I _ -> false

(* Pairing on the Pentium: simple integer ops pair U+V; shifts and FP ops
   only issue in the U pipe; a branch can issue in the V pipe after an
   integer op. We encode this with unit classes: IU pairs with IU and BRU;
   LSU (shift-class) and FPU pair with nothing. *)
let attrs (i : instr) : Pipeline.attrs =
  let mk ?(lat = 1) ?(unit_ = Pipeline.IU) ?(load = false) ?(store = false)
      uses defs =
    { Pipeline.uses; defs; latency = lat; unit_; is_load = load;
      is_store = store }
  in
  match i with
  | Mov (R d, src) -> mk ~load:(op_is_mem src) ~lat:(if op_is_mem src then 2 else 1)
        (op_uses src) [ rid d ]
  | Mov (M m, src) -> mk ~store:true (op_uses src @ mem_uses m) []
  | Mov (I _, _) -> mk [] []
  | Load (_, _, d, m) -> mk ~load:true ~lat:2 (mem_uses m) [ rid d ]
  | Store (_, m, src) -> mk ~store:true (op_uses src @ mem_uses m) []
  | Alu (_, R d, src) ->
      mk ~load:(op_is_mem src)
        ~lat:(if op_is_mem src then 2 else 1)
        (rid d :: op_uses src)
        [ rid d; cc_id ]
  | Alu (_, M m, src) ->
      mk ~load:true ~store:true ~lat:3 (op_uses src @ mem_uses m) [ cc_id ]
  | Alu (_, I _, _) -> mk [] []
  | Shift (_, R d, _) -> mk ~unit_:Pipeline.LSU [ rid d ] [ rid d; cc_id ]
  | Shift (_, M m, _) ->
      mk ~unit_:Pipeline.LSU ~load:true ~store:true ~lat:3 (mem_uses m)
        [ cc_id ]
  | Shift (_, I _, _) -> mk [] []
  | Shiftv (_, R d, c) ->
      mk ~lat:2 ~unit_:Pipeline.LSU [ rid d; rid c ] [ rid d; cc_id ]
  | Shiftv (_, M m, c) ->
      mk ~lat:3 ~unit_:Pipeline.LSU ~load:true ~store:true
        (rid c :: mem_uses m) [ cc_id ]
  | Shiftv (_, I _, _) -> mk [] []
  | Imul (d, src) ->
      mk ~lat:9 ~load:(op_is_mem src) (rid d :: op_uses src) [ rid d ]
  | Idiv (src, _) ->
      mk ~lat:25 ~load:(op_is_mem src)
        (rid eax :: rid edx :: op_uses src)
        [ rid eax; rid edx ]
  | Cdq -> mk [ rid eax ] [ rid edx ]
  | Lea (d, m) -> mk (mem_uses m) [ rid d ]
  | Cmp (a, b) ->
      mk ~load:(op_is_mem a || op_is_mem b) (op_uses a @ op_uses b) [ cc_id ]
  | Setcc (_, d) -> mk ~lat:1 ~unit_:Pipeline.LSU [ cc_id ] [ rid d ]
  | Jcc _ -> mk ~unit_:Pipeline.BRU [ cc_id ] []
  | Jmp _ -> mk ~unit_:Pipeline.BRU [] []
  | Jmp_ind o -> mk ~unit_:Pipeline.BRU (op_uses o) []
  | Call (_, _) -> mk ~unit_:Pipeline.BRU [] [ rid ebp ]
  | Call_ind (o, _) -> mk ~unit_:Pipeline.BRU (op_uses o) [ rid ebp ]
  | Fop (op, _, d, a, b) ->
      let lat =
        match op with VI.Fadd | VI.Fsub -> 3 | VI.Fmul -> 3 | VI.Fdiv -> 39
      in
      mk ~lat ~unit_:Pipeline.FPU [ fid a; fid b ] [ fid d ]
  | Fun1 (_, d, a) -> mk ~unit_:Pipeline.FPU [ fid a ] [ fid d ]
  | Fload (_, d, m) ->
      mk ~load:true ~lat:2 ~unit_:Pipeline.FPU (mem_uses m) [ fid d ]
  | Fstore (_, v, m) -> mk ~store:true ~unit_:Pipeline.FPU (fid v :: mem_uses m) []
  | Fld_pool (d, _) -> mk ~load:true ~lat:2 ~unit_:Pipeline.FPU [] [ fid d ]
  | Fcmp (_, a, b) -> mk ~lat:3 ~unit_:Pipeline.FPU [ fid a; fid b ] [ fcc_id ]
  | Fcc_to_reg d -> mk ~lat:2 ~unit_:Pipeline.LSU [ fcc_id ] [ rid d ]
  | Cvt_f_i (d, src) ->
      mk ~lat:3 ~load:(op_is_mem src) ~unit_:Pipeline.FPU (op_uses src)
        [ fid d ]
  | Cvt_i_f (d, a) -> mk ~lat:3 ~unit_:Pipeline.FPU [ fid a ] [ rid d ]
  | Guard_data r | Guard_code r -> mk [ rid r ] []
  | Trapi _ -> mk [] []
  | Hcall _ -> mk [] [ rid ecx ]
  | Nop -> mk [] []

let pipeline_config : Pipeline.config =
  {
    Pipeline.issue_width = 2;
    dual_issue_rule =
      (fun a b ->
        match (a, b) with
        | Pipeline.IU, Pipeline.IU -> true
        | Pipeline.IU, Pipeline.BRU -> true
        | _ -> false);
    taken_branch_penalty = 1;
  }

(* --- printing --- *)

let string_of_mem (m : mem) =
  let parts =
    (match m.base with Some r -> [ reg_names.(r) ] | None -> [])
    @ (match m.index with
      | Some (r, s) -> [ Printf.sprintf "%s*%d" reg_names.(r) s ]
      | None -> [])
    @ if m.disp <> 0 || (m.base = None && m.index = None) then
        [ Printf.sprintf "0x%x" (m.disp land 0xFFFFFFFF) ]
      else []
  in
  "[" ^ String.concat "+" parts ^ "]"

let string_of_operand = function
  | R r -> reg_names.(r)
  | M m -> string_of_mem m
  | I v -> string_of_int v

let aluop_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"

let shop_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let string_of_instr (i : instr) =
  let p = Printf.sprintf in
  let o = string_of_operand in
  match i with
  | Mov (d, s) -> p "mov %s, %s" (o d) (o s)
  | Load (w, signed, d, m) ->
      let op =
        match (w, signed) with
        | VI.W32, _ -> "mov"
        | VI.W8, true -> "movsx8"
        | VI.W8, false -> "movzx8"
        | VI.W16, true -> "movsx16"
        | VI.W16, false -> "movzx16"
      in
      p "%s %s, %s" op reg_names.(d) (string_of_mem m)
  | Store (w, m, s) ->
      let sfx = match w with VI.W8 -> "b" | VI.W16 -> "w" | VI.W32 -> "" in
      p "mov%s %s, %s" sfx (string_of_mem m) (o s)
  | Alu (op, d, s) -> p "%s %s, %s" (aluop_name op) (o d) (o s)
  | Shift (op, d, k) -> p "%s %s, %d" (shop_name op) (o d) k
  | Shiftv (op, d, c) -> p "%s %s, %s" (shop_name op) (o d) reg_names.(c)
  | Imul (d, s) -> p "imul %s, %s" reg_names.(d) (o s)
  | Idiv (s, signed) -> p "%s %s" (if signed then "idiv" else "div") (o s)
  | Cdq -> "cdq"
  | Lea (d, m) -> p "lea %s, %s" reg_names.(d) (string_of_mem m)
  | Cmp (a, b) -> p "cmp %s, %s" (o a) (o b)
  | Setcc (c, d) -> p "set%s %s" (VI.cond_name c) reg_names.(d)
  | Jcc (c, l) -> p "j%s L%d" (VI.cond_name c) l
  | Jmp l -> p "jmp L%d" l
  | Jmp_ind x -> p "jmp %s" (o x)
  | Call (l, r) -> p "call L%d (ret 0x%x)" l r
  | Call_ind (x, r) -> p "call %s (ret 0x%x)" (o x) r
  | Fop (op, pr, d, a, b) ->
      p "%s.%s fp%d, fp%d, fp%d" (VI.fbinop_name op) (VI.prec_suffix pr) d a b
  | Fun1 (op, d, a) -> p "%s fp%d, fp%d" (VI.funop_name op) d a
  | Fload (_, d, m) -> p "fld fp%d, %s" d (string_of_mem m)
  | Fstore (_, v, m) -> p "fst %s, fp%d" (string_of_mem m) v
  | Fld_pool (d, i) -> p "fld fp%d, pool[%d]" d i
  | Fcmp (op, a, b) -> p "fcom.%s fp%d, fp%d" (VI.fcmp_name op) a b
  | Fcc_to_reg d -> p "fnstsw %s" reg_names.(d)
  | Cvt_f_i (d, s) -> p "fild fp%d, %s" d (o s)
  | Cvt_i_f (d, a) -> p "fistp %s, fp%d" reg_names.(d) a
  | Guard_data r -> p "guardd %s" reg_names.(r)
  | Guard_code r -> p "guardc %s" reg_names.(r)
  | Trapi n -> p "trap %d" n
  | Hcall n -> p "hcall %d" n
  | Nop -> "nop"

(* --- structural identity of translated programs (see Risc) --- *)

let equal_program (a : program) (b : program) = Stdlib.compare a b = 0

let fingerprint_program (p : program) : Omni_util.Fnv64.t =
  Omni_util.Fnv64.digest_string
    (Marshal.to_string (p.code, p.entry, p.addr_map, p.pool, p.n_omni) [])
