(* Shared definitions for the load-time translators and target simulators. *)

(* Why a native instruction exists, relative to the OmniVM instruction it
   came from. Dynamic counts per origin regenerate Figure 1 of the paper. *)
type origin =
  | Core (* direct translation of the OmniVM instruction *)
  | Addr (* addressing-mode expansion *)
  | Cmp (* compare half of a compare-and-branch *)
  | Ldi (* large-immediate materialization *)
  | Bnop (* unfilled branch delay slot *)
  | Sfi (* software fault isolation check *)

let origin_name = function
  | Core -> "core"
  | Addr -> "addr"
  | Cmp -> "cmp"
  | Ldi -> "ldi"
  | Bnop -> "bnop"
  | Sfi -> "sfi"

let all_origins = [ Core; Addr; Cmp; Ldi; Bnop; Sfi ]

let origin_index = function
  | Core -> 0
  | Addr -> 1
  | Cmp -> 2
  | Ldi -> 3
  | Bnop -> 4
  | Sfi -> 5

(* Code-quality tier of a native compiler baseline. [Cc] is the vendor
   compiler (better machine-dependent selection and scheduling), [Gcc] the
   portable compiler (the one retargeted to OmniVM in the paper). *)
type tier = Gcc | Cc

(* What the translator is producing: a sandboxed mobile module, or native
   code acting as a compiler baseline. *)
type mode = Mobile of Omni_sfi.Policy.t | Native of tier

let sfi_policy = function
  | Mobile p -> p
  | Native _ -> Omni_sfi.Policy.off

(* Translator optimizations (paper section 4.2: these are the cheap
   load-time optimizations; everything heavier belongs in the compiler). *)
type topts = {
  schedule : bool; (* local instruction scheduling *)
  fill_delay_slots : bool;
  use_gp : bool; (* global-pointer addressing of the data segment *)
  peephole : bool;
  sfi_opt : bool;
      (* the paper's future-work SFI optimization (4.4): reuse the
         sandboxed dedicated register for nearby stores to the same base,
         relying on the segment guard zone for the small displacement.
         Off by default: the paper's measured configuration predates it. *)
}

let all_opts = { schedule = true; fill_delay_slots = true; use_gp = true;
                 peephole = true; sfi_opt = false }

let no_opts = { schedule = false; fill_delay_slots = false; use_gp = false;
                peephole = false; sfi_opt = false }

(* What the translator declares it laid down while sandboxing: the number
   of data- and code-segment masking instructions it emitted. Carried on
   the translated program and cross-checked against the certifying
   verifier's witness (Omni_cert.Check), so producer and checker cannot
   silently drift apart. Scheduling reorders instructions but never adds
   or removes masks, so the counts survive every later pass. *)
type sfi_decl = {
  mutable data_masks : int;
  mutable code_masks : int;
}

let new_sfi_decl () = { data_masks = 0; code_masks = 0 }

(* --- execution statistics --- *)

type stats = {
  mutable instructions : int; (* dynamic native instructions *)
  by_origin : int array; (* indexed by origin_index *)
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable omni_instructions : int; (* dynamic OmniVM instructions *)
}

let new_stats () =
  {
    instructions = 0;
    by_origin = Array.make 6 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    taken_branches = 0;
    omni_instructions = 0;
  }

type outcome =
  | Exited of int
  | Faulted of Omnivm.Fault.t
  | Out_of_fuel

(* Expansion profile: extra native instructions per OmniVM instruction,
   split by origin (Figure 1's y-axis). *)
let expansion_profile stats =
  let base = float_of_int (max 1 stats.omni_instructions) in
  List.filter_map
    (fun o ->
      match o with
      | Core -> None
      | _ ->
          Some
            ( origin_name o,
              float_of_int stats.by_origin.(origin_index o) /. base ))
    all_origins
