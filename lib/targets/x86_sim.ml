(* Functional + cycle-approximate simulator for translated x86 code. *)

open X86
module W = Omni_util.Word32
module VI = Omnivm.Instr
module Mem = Omnivm.Memory

type state = {
  prog : program;
  regs : int array; (* 8 *)
  fps : float array; (* 8 *)
  mutable cc : int * int;
  mutable fcc : bool;
  mutable pc : int;
  mem : Mem.t;
  host : Omni_runtime.Host.t;
  mutable handler : int;
  mutable exited : int option;
  stats : Machine.stats;
  pipe : Pipeline.t;
}

let create prog mem host =
  let st =
    {
      prog;
      regs = Array.make 8 0;
      fps = Array.make 8 0.0;
      cc = (0, 0);
      fcc = false;
      pc = prog.entry;
      mem;
      host;
      handler = 0;
      exited = None;
      stats = Machine.new_stats ();
      pipe = Pipeline.create pipeline_config;
    }
  in
  st.regs.(esp) <- Omnivm.Layout.initial_sp;
  (* omni gp (r13) lives in its memory home *)
  Mem.store32 mem
    (Omnivm.Layout.regsave_int_addr Omnivm.Reg.gp)
    Omnivm.Layout.data_base;
  st

let fault f = raise (Omnivm.Fault.Vm_fault f)

let native_of_omni st addr =
  let off = addr - Omnivm.Layout.code_base in
  if off < 0 || off land 3 <> 0 || off / 4 >= Array.length st.prog.addr_map
  then fault (Access_violation { addr; access = Execute })
  else
    let n = st.prog.addr_map.(off / 4) in
    if n < 0 then fault (Access_violation { addr; access = Execute })
    else n

let eff st (m : mem) =
  let b = match m.base with Some r -> st.regs.(r) | None -> 0 in
  let i = match m.index with Some (r, s) -> st.regs.(r) * s | None -> 0 in
  (b + i + m.disp) land 0xFFFFFFFF

let value st = function
  | R r -> st.regs.(r)
  | I v -> W.of_int v
  | M m -> Mem.load32 st.mem (eff st m)

let set_reg st r v = st.regs.(r) <- W.of_int v

let write st dst v =
  match dst with
  | R r -> set_reg st r v
  | M m -> Mem.store32 st.mem (eff st m) v
  | I _ -> invalid_arg "x86 write to immediate"

let hcall st n =
  let home_get r =
    match int_home r with
    | Hzero -> 0
    | Hreg x -> st.regs.(x)
    | Hmem a -> Mem.load32 st.mem a
  in
  let req =
    {
      Omni_runtime.Host.index = n;
      arg = (fun i -> home_get (1 + i));
      farg =
        (fun i ->
          match float_home (1 + i) with
          | FHreg x -> st.fps.(x)
          | FHmem a -> Mem.load_float st.mem a);
      set_ret =
        (fun v ->
          match int_home 1 with
          | Hreg x -> set_reg st x v
          | Hmem a -> Mem.store32 st.mem a v
          | Hzero -> ());
      mem = st.mem;
    }
  in
  match Omni_runtime.Host.handle st.host req with
  | Omni_runtime.Host.Continue -> ()
  | Omni_runtime.Host.Exit code -> st.exited <- Some code
  | Omni_runtime.Host.Set_handler addr -> st.handler <- addr

let round_single f = Int32.float_of_bits (Int32.bits_of_float f)

let exec_simple st (i : instr) =
  match i with
  | Mov (dst, src) -> write st dst (value st src)
  | Load (w, signed, d, m) ->
      let a = eff st m in
      let v =
        match (w, signed) with
        | VI.W8, false -> Mem.load8 st.mem a
        | VI.W8, true -> W.sext8 (Mem.load8 st.mem a)
        | VI.W16, false -> Mem.load16 st.mem a
        | VI.W16, true -> W.sext16 (Mem.load16 st.mem a)
        | VI.W32, _ -> Mem.load32 st.mem a
      in
      set_reg st d v
  | Store (w, m, src) -> (
      let a = eff st m in
      let v = value st src in
      match w with
      | VI.W8 -> Mem.store8 st.mem a v
      | VI.W16 -> Mem.store16 st.mem a v
      | VI.W32 -> Mem.store32 st.mem a v)
  | Alu (op, dst, src) ->
      let a = value st dst and b = value st src in
      let v =
        match op with
        | Add -> W.add a b
        | Sub -> W.sub a b
        | And -> W.logand a b
        | Or -> W.logor a b
        | Xor -> W.logxor a b
      in
      write st dst v;
      st.cc <- (v, 0)
  | Shift (op, dst, k) ->
      let a = value st dst in
      let v =
        match op with
        | Shl -> W.shift_left a k
        | Shr -> W.shift_right_logical a k
        | Sar -> W.shift_right_arith a k
      in
      write st dst v;
      st.cc <- (v, 0)
  | Shiftv (op, dst, c) ->
      let a = value st dst in
      let k = W.to_unsigned st.regs.(c) land 31 in
      let v =
        match op with
        | Shl -> W.shift_left a k
        | Shr -> W.shift_right_logical a k
        | Sar -> W.shift_right_arith a k
      in
      write st dst v;
      st.cc <- (v, 0)
  | Imul (d, src) -> set_reg st d (W.mul st.regs.(d) (value st src))
  | Idiv (src, signed) ->
      let a = st.regs.(eax) and b = value st src in
      if signed then begin
        let q = W.div a b and r = W.rem a b in
        set_reg st eax q;
        set_reg st edx r
      end
      else begin
        let q = W.divu a b and r = W.remu a b in
        set_reg st eax q;
        set_reg st edx r
      end
  | Cdq -> set_reg st edx (if st.regs.(eax) < 0 then -1 else 0)
  | Lea (d, m) -> set_reg st d (eff st m)
  | Cmp (a, b) -> st.cc <- (value st a, value st b)
  | Setcc (c, d) ->
      let x, y = st.cc in
      set_reg st d (if VI.eval_cond c x y then 1 else 0)
  | Fop (op, prec, d, a, b) ->
      let x = st.fps.(a) and y = st.fps.(b) in
      let v =
        match op with
        | VI.Fadd -> x +. y
        | VI.Fsub -> x -. y
        | VI.Fmul -> x *. y
        | VI.Fdiv -> x /. y
      in
      st.fps.(d) <-
        (match prec with VI.Single -> round_single v | VI.Double -> v)
  | Fun1 (op, d, a) ->
      let x = st.fps.(a) in
      st.fps.(d) <-
        (match op with
        | VI.Fneg -> -.x
        | VI.Fabs -> Float.abs x
        | VI.Fmov -> x)
  | Fload (prec, d, m) ->
      let a = eff st m in
      st.fps.(d) <-
        (match prec with
        | VI.Single -> Mem.load_single st.mem a
        | VI.Double -> Mem.load_float st.mem a)
  | Fstore (prec, v, m) -> (
      let a = eff st m in
      match prec with
      | VI.Single -> Mem.store_single st.mem a st.fps.(v)
      | VI.Double -> Mem.store_float st.mem a st.fps.(v))
  | Fld_pool (d, i) -> st.fps.(d) <- st.prog.pool.(i)
  | Fcmp (op, a, b) ->
      let x = st.fps.(a) and y = st.fps.(b) in
      st.fcc <-
        (match op with VI.Feq -> x = y | VI.Flt -> x < y | VI.Fle -> x <= y)
  | Fcc_to_reg d -> set_reg st d (if st.fcc then 1 else 0)
  | Cvt_f_i (d, src) -> st.fps.(d) <- float_of_int (value st src)
  | Cvt_i_f (d, a) ->
      let f = st.fps.(a) in
      let v =
        if Float.is_nan f then 0
        else if f >= 2147483648.0 then W.max_int32
        else if f <= -2147483649.0 then W.min_int32
        else W.of_int (int_of_float f)
      in
      set_reg st d v
  | Guard_data r ->
      let a = W.to_unsigned st.regs.(r) in
      if not (Omnivm.Layout.in_data a) then
        fault (Access_violation { addr = a; access = Write })
  | Guard_code r ->
      let a = W.to_unsigned st.regs.(r) in
      if not (Omnivm.Layout.in_code a) then
        fault (Access_violation { addr = a; access = Execute })
  | Trapi n -> fault (Explicit_trap n)
  | Hcall n -> hcall st n
  | Nop -> ()
  | Jcc _ | Jmp _ | Jmp_ind _ | Call _ | Call_ind _ -> assert false

let control_target st (i : instr) : int option =
  match i with
  | Jcc (c, l) ->
      let a, b = st.cc in
      if VI.eval_cond c a b then Some l else None
  | Jmp l -> Some l
  | Jmp_ind x -> Some (native_of_omni st (W.to_unsigned (value st x)))
  | Call (l, ret) ->
      st.regs.(ebp) <- W.of_int ret;
      Some l
  | Call_ind (x, ret) ->
      let t = native_of_omni st (W.to_unsigned (value st x)) in
      st.regs.(ebp) <- W.of_int ret;
      Some t
  | _ -> assert false

let account st (s : slot) ~taken =
  let st_ = st.stats in
  st_.Machine.instructions <- st_.Machine.instructions + 1;
  let oi = Machine.origin_index s.origin in
  st_.Machine.by_origin.(oi) <- st_.Machine.by_origin.(oi) + 1;
  if s.origin = Machine.Core then
    st_.Machine.omni_instructions <- st_.Machine.omni_instructions + 1;
  let a = attrs s.i in
  if a.Pipeline.is_load then st_.Machine.loads <- st_.Machine.loads + 1;
  if a.Pipeline.is_store then st_.Machine.stores <- st_.Machine.stores + 1;
  (match s.i with
  | Jcc _ ->
      st_.Machine.branches <- st_.Machine.branches + 1;
      if taken then st_.Machine.taken_branches <- st_.Machine.taken_branches + 1
  | _ -> ());
  Pipeline.step st.pipe a ~taken_branch:taken

let deliver_fault st f =
  if st.handler = 0 then raise (Omnivm.Fault.Vm_fault f)
  else begin
    let h = st.handler in
    st.handler <- 0;
    (match int_home 1 with
    | Hreg x -> st.regs.(x) <- Omnivm.Fault.code f
    | Hmem a -> Mem.store32 st.mem a (Omnivm.Fault.code f)
    | Hzero -> ());
    st.pc <- native_of_omni st h
  end

exception Out_of_fuel_exn

let run ?(fuel = max_int) ?watchdog (prog : program) mem host :
    Machine.outcome * Machine.stats * state =
  let st = create prog mem host in
  let code = prog.code in
  let n = Array.length code in
  let fuel_left = ref fuel in
  (* Same countdown scheme as Interp.run: the clock is only read every
     [poll_every] native instructions; expiry raises Deadline_exceeded
     through the ordinary fault-delivery path, preserving engine parity. *)
  let poll =
    match watchdog with
    | None -> fun () -> ()
    | Some w ->
        let every = Omnivm.Watchdog.poll_every w in
        let left = ref every in
        fun () ->
          decr left;
          if !left <= 0 then begin
            left := every;
            Omnivm.Watchdog.check w
          end
  in
  let step () =
    poll ();
    if st.pc < 0 || st.pc >= n then
      fault (Access_violation { addr = st.pc; access = Execute })
    else begin
      let s = Array.unsafe_get code st.pc in
      decr fuel_left;
      if !fuel_left < 0 then raise Out_of_fuel_exn;
      if is_control s.i then begin
        let target = control_target st s.i in
        account st s ~taken:(target <> None);
        st.pc <- (match target with Some t -> t | None -> st.pc + 1)
      end
      else begin
        account st s ~taken:false;
        exec_simple st s.i;
        st.pc <- st.pc + 1
      end
    end
  in
  let outcome =
    let rec go () =
      match st.exited with
      | Some code -> Machine.Exited code
      | None -> (
          match step () with
          | () -> go ()
          | exception Omnivm.Fault.Vm_fault f -> (
              match deliver_fault st f with
              | () -> go ()
              | exception Omnivm.Fault.Vm_fault f -> Machine.Faulted f)
          | exception W.Division_by_zero -> (
              match deliver_fault st Omnivm.Fault.Division_by_zero with
              | () -> go ()
              | exception Omnivm.Fault.Vm_fault f -> Machine.Faulted f))
    in
    try go () with Out_of_fuel_exn -> Machine.Out_of_fuel
  in
  st.stats.Machine.cycles <- Pipeline.cycles st.pipe;
  (outcome, st.stats, st)
