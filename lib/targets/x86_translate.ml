(* Load-time translator: OmniVM -> x86.

   Two-address selection with memory operands: OmniVM registers without an
   x86 home are used directly as memory operands where the ISA allows,
   which is why the register shortage costs relatively little (paper 3.2).
   32-bit immediates are free on x86, so there is no ldi expansion, and
   32-bit displacements make OmniVM's addressing map 1:1 (section 3.4).

   SFI uses immediate masks (no dedicated mask registers needed):
       lea eax, [addr] ; and eax, data_mask ; or eax, data_base ;
       mov [eax], src
   The translator optimizations are FP scheduling and peephole (redundant
   compare elimination), as in the paper. *)

open X86
module VI = Omnivm.Instr
module W = Omni_util.Word32
module L = Omnivm.Layout
module Trace = Omni_obs.Trace

exception Translate_error of string

let terror fmt = Printf.ksprintf (fun s -> raise (Translate_error s)) fmt

type emitter = {
  mutable slots : slot list; (* reversed *)
  mutable pool : float list;
  mutable pool_n : int;
  decl : Machine.sfi_decl; (* shared across chunks; masking counts *)
}

let emit e origin i = e.slots <- mk origin i :: e.slots

let pool_const e v =
  let rec find i = function
    | [] ->
        e.pool <- v :: e.pool;
        e.pool_n <- e.pool_n + 1;
        e.pool_n - 1
    | x :: rest -> if Float.equal x v then e.pool_n - 1 - i else find (i + 1) rest
  in
  find 0 e.pool

(* scratch memory word (the unused home of OmniVM r0) *)
let slot0 = L.regsave_int_addr 0

let sfi_mode (mode : Machine.mode) =
  match mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.mode
  | Machine.Native _ -> Omni_sfi.Policy.Off

let protect_reads (mode : Machine.mode) =
  match mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.protect_reads
  | Machine.Native _ -> false

let sfi_pad (mode : Machine.mode) =
  match mode with
  | Machine.Mobile p -> p.Omni_sfi.Policy.pad
  | Machine.Native _ -> Omni_sfi.Policy.Pad_none

(* Effective guard-zone bound for statically-safe displacements; widened
   under [Pad_guard8]. *)
let guard_bound mode = Omni_sfi.Policy.guard_zone_of_pad (sfi_pad mode)

(* Padding of the sandboxing sequence (the instruction-padding paper's
   knob). Called between the mask/box pair and the protected memory op;
   never used on the esp re-sandboxing triple (verified by adjacency). *)
let emit_pad e mode =
  match sfi_pad mode with
  | Omni_sfi.Policy.Pad_none | Omni_sfi.Policy.Pad_guard8 -> ()
  | Omni_sfi.Policy.Pad_nop -> emit e Machine.Sfi Nop
  | Omni_sfi.Policy.Pad_align ->
      (* pad so the protected op lands on an even slot of this chunk *)
      if List.length e.slots land 1 = 1 then emit e Machine.Sfi Nop

(* operand for reading an omni register *)
let rop r =
  match int_home r with
  | Hzero -> I 0
  | Hreg x -> R x
  | Hmem a -> M (mabs a)

(* bring an omni register into a given scratch x86 register *)
let to_scratch e origin r scratch =
  match int_home r with
  | Hzero ->
      emit e origin (Mov (R scratch, I 0));
      scratch
  | Hreg x -> x
  | Hmem a ->
      emit e origin (Mov (R scratch, M (mabs a)));
      scratch

(* write scratch/eax into an omni register's home *)
let from_value e origin r (src : operand) =
  match int_home r with
  | Hzero -> ()
  | Hreg x -> (
      match src with
      | R s when s = x -> ()
      | _ -> emit e origin (Mov (R x, src)))
  | Hmem a -> (
      match src with
      | M _ ->
          emit e origin (Mov (R eax, src));
          emit e origin (Mov (M (mabs a), R eax))
      | _ -> emit e origin (Mov (M (mabs a), src)))

(* memory operand for omni address base+disp; may use eax *)
let addr_mem e origin base disp : mem =
  match int_home base with
  | Hzero -> mabs disp
  | Hreg x -> mbase x disp
  | Hmem a ->
      emit e origin (Mov (R eax, M (mabs a)));
      mbase eax disp

let store_statically_safe mode base disp =
  (base = Omnivm.Reg.sp && disp >= 0 && disp < guard_bound mode)
  || (base = 0 && L.in_data disp)

(* fp operand handling *)
let fsrc e origin f scratch =
  match float_home f with
  | FHreg x -> x
  | FHmem a ->
      emit e origin (Fload (VI.Double, scratch, mabs a));
      scratch

let fdst_apply e origin f (compute : int -> unit) =
  match float_home f with
  | FHreg x -> compute x
  | FHmem a ->
      compute fp_scratch2;
      emit e origin (Fstore (VI.Double, fp_scratch2, mabs a))

(* --- translation of one OmniVM instruction --- *)

let aluop_of = function
  | VI.Add -> Some Add
  | VI.Sub -> Some Sub
  | VI.And -> Some And
  | VI.Or -> Some Or
  | VI.Xor -> Some Xor
  | _ -> None

let shop_of = function
  | VI.Sll -> Some Shl
  | VI.Srl -> Some Shr
  | VI.Sra -> Some Sar
  | _ -> None

let omni_index_of_addr addr =
  let off = addr - L.code_base in
  if off < 0 || off land 3 <> 0 then None else Some (off / 4)

let target_of addr =
  match omni_index_of_addr addr with
  | Some i -> i
  | None -> terror "branch to non-code address 0x%x" addr

(* dst := a op b where b is an operand; three-address via scratch *)
let emit_alu3 e rd a_op (b : operand) op =
  (* dst in a register we can clobber *)
  match int_home rd with
  | Hzero ->
      (* result discarded; still evaluate for flags parity: skip *)
      ()
  | Hreg d ->
      let b = match b with R s when s = d -> b | _ -> b in
      (match a_op with
      | R s when s = d -> emit e Machine.Core (Alu (op, R d, b))
      | _ -> (
          match b with
          | R s when s = d ->
              (* d is the second operand: go through eax *)
              emit e Machine.Addr (Mov (R eax, a_op));
              emit e Machine.Core (Alu (op, R eax, b));
              emit e Machine.Addr (Mov (R d, R eax))
          | _ ->
              emit e Machine.Addr (Mov (R d, a_op));
              emit e Machine.Core (Alu (op, R d, b))))
  | Hmem a ->
      emit e Machine.Addr (Mov (R eax, a_op));
      emit e Machine.Core (Alu (op, R eax, b));
      emit e Machine.Addr (Mov (M (mabs a), R eax))

let translate_binop e op rd rs1 (b : operand) =
  match aluop_of op with
  | Some aop -> emit_alu3 e rd (rop rs1) b aop
  | None -> (
      match shop_of op with
      | Some sop -> (
          match b with
          | I k -> (
              let k = k land 31 in
              match int_home rd with
              | Hzero -> ()
              | Hreg d ->
                  (match rop rs1 with
                  | R s when s = d -> ()
                  | src -> emit e Machine.Addr (Mov (R d, src)));
                  emit e Machine.Core (Shift (sop, R d, k))
              | Hmem a ->
                  emit e Machine.Addr (Mov (R eax, rop rs1));
                  emit e Machine.Core (Shift (sop, R eax, k));
                  emit e Machine.Addr (Mov (M (mabs a), R eax)))
          | b ->
              (* variable shift: count through edx *)
              emit e Machine.Addr (Mov (R edx, b));
              (match int_home rd with
              | Hzero -> ()
              | Hreg d ->
                  (match rop rs1 with
                  | R s when s = d -> ()
                  | src -> emit e Machine.Addr (Mov (R d, src)));
                  emit e Machine.Core (Shiftv (sop, R d, edx))
              | Hmem a ->
                  emit e Machine.Addr (Mov (R eax, rop rs1));
                  emit e Machine.Core (Shiftv (sop, R eax, edx));
                  emit e Machine.Addr (Mov (M (mabs a), R eax))))
      | None -> (
          match op with
          | VI.Mul ->
              emit e Machine.Addr (Mov (R eax, rop rs1));
              emit e Machine.Core (Imul (eax, b));
              from_value e Machine.Addr rd (R eax)
          | VI.Div | VI.Divu | VI.Rem | VI.Remu ->
              let signed = op = VI.Div || op = VI.Rem in
              emit e Machine.Addr (Mov (R eax, rop rs1));
              if signed then emit e Machine.Addr Cdq
              else emit e Machine.Addr (Mov (R edx, I 0));
              let divisor =
                match b with
                | I _ ->
                    emit e Machine.Addr (Store (VI.W32, mabs slot0, b));
                    M (mabs slot0)
                | R r when r = eax || r = edx ->
                    emit e Machine.Addr (Store (VI.W32, mabs slot0, b));
                    M (mabs slot0)
                | x -> x
              in
              emit e Machine.Core (Idiv (divisor, signed));
              let result =
                if op = VI.Div || op = VI.Divu then R eax else R edx
              in
              from_value e Machine.Addr rd result
          | VI.Slt | VI.Sltu ->
              let a_op = rop rs1 in
              let a_op, b =
                match (a_op, b) with
                | M _, M _ ->
                    emit e Machine.Addr (Mov (R eax, a_op));
                    (R eax, b)
                | _ -> (a_op, b)
              in
              let a_op =
                match a_op with
                | I _ ->
                    emit e Machine.Addr (Mov (R eax, a_op));
                    R eax
                | x -> x
              in
              emit e Machine.Cmp (Cmp (a_op, b));
              let c = if op = VI.Slt then VI.Lt else VI.Ltu in
              (match int_home rd with
              | Hzero -> ()
              | Hreg d -> emit e Machine.Core (Setcc (c, d))
              | Hmem a ->
                  emit e Machine.Core (Setcc (c, eax));
                  emit e Machine.Addr (Mov (M (mabs a), R eax)))
          | _ -> terror "unhandled x86 binop"))

let sandbox_store e mode ~base ~disp ~(do_store : mem -> unit) =
  if sfi_mode mode = Omni_sfi.Policy.Off || store_statically_safe mode base disp
  then begin
    if sfi_mode mode <> Omni_sfi.Policy.Off then
      Trace.count "translate.sfi_checks_elided";
    let m = addr_mem e Machine.Addr base disp in
    do_store m
  end
  else begin
    (* address into eax, then mask *)
    (match int_home base with
    | Hzero -> emit e Machine.Sfi (Mov (R eax, I disp))
    | Hreg x -> emit e Machine.Sfi (Lea (eax, mbase x disp))
    | Hmem a ->
        emit e Machine.Sfi (Mov (R eax, M (mabs a)));
        if disp <> 0 then emit e Machine.Sfi (Lea (eax, mbase eax disp)));
    Trace.count "translate.sfi_checks";
    match sfi_mode mode with
    | Omni_sfi.Policy.Sandbox ->
        e.decl.Machine.data_masks <- e.decl.Machine.data_masks + 1;
        emit e Machine.Sfi (Alu (And, R eax, I L.data_mask));
        emit e Machine.Sfi (Alu (Or, R eax, I L.data_base));
        emit_pad e mode;
        do_store (mbase eax 0)
    | Omni_sfi.Policy.Guard ->
        emit e Machine.Sfi (Guard_data eax);
        do_store (mbase eax 0)
    | Omni_sfi.Policy.Off -> assert false
  end

(* optional read protection: sandbox a load address into eax *)
let sandbox_load e mode ~base ~disp ~(do_load : mem -> unit) =
  if
    sfi_mode mode = Omni_sfi.Policy.Off
    || (not (protect_reads mode))
    || store_statically_safe mode base disp
  then do_load (addr_mem e Machine.Addr base disp)
  else begin
    (match int_home base with
    | Hzero -> emit e Machine.Sfi (Mov (R eax, I disp))
    | Hreg x -> emit e Machine.Sfi (Lea (eax, mbase x disp))
    | Hmem a ->
        emit e Machine.Sfi (Mov (R eax, M (mabs a)));
        if disp <> 0 then emit e Machine.Sfi (Lea (eax, mbase eax disp)));
    Trace.count "translate.sfi_checks";
    match sfi_mode mode with
    | Omni_sfi.Policy.Sandbox ->
        e.decl.Machine.data_masks <- e.decl.Machine.data_masks + 1;
        emit e Machine.Sfi (Alu (And, R eax, I L.data_mask));
        emit e Machine.Sfi (Alu (Or, R eax, I L.data_base));
        emit_pad e mode;
        do_load (mbase eax 0)
    | Omni_sfi.Policy.Guard ->
        emit e Machine.Sfi (Guard_data eax);
        do_load (mbase eax 0)
    | Omni_sfi.Policy.Off -> assert false
  end

let sandbox_code_operand e mode (x : operand) : operand =
  match sfi_mode mode with
  | Omni_sfi.Policy.Off -> x
  | Omni_sfi.Policy.Sandbox ->
      e.decl.Machine.code_masks <- e.decl.Machine.code_masks + 1;
      emit e Machine.Sfi (Mov (R eax, x));
      emit e Machine.Sfi (Alu (And, R eax, I (L.code_mask land lnot 3)));
      emit e Machine.Sfi (Alu (Or, R eax, I L.code_base));
      emit_pad e mode;
      R eax
  | Omni_sfi.Policy.Guard ->
      emit e Machine.Sfi (Mov (R eax, x));
      emit e Machine.Sfi (Guard_code eax);
      R eax

let resandbox_sp e mode =
  match sfi_mode mode with
  | Omni_sfi.Policy.Off -> ()
  | Omni_sfi.Policy.Sandbox ->
      emit e Machine.Sfi (Alu (And, R esp, I L.data_mask));
      emit e Machine.Sfi (Alu (Or, R esp, I L.data_base))
  | Omni_sfi.Policy.Guard -> emit e Machine.Sfi (Guard_data esp)

let sp_write_safe mode (ins : int VI.t) =
  match ins with
  | VI.Binopi ((VI.Add | VI.Sub), rd, rs, imm)
    when rd = Omnivm.Reg.sp && rs = Omnivm.Reg.sp
         && abs imm < guard_bound mode ->
      true
  | _ -> false

let writes_sp (ins : int VI.t) =
  match ins with
  | VI.Binop (_, rd, _, _) | VI.Binopi (_, rd, _, _) | VI.Li (rd, _)
  | VI.Load (_, _, rd, _, _) | VI.Ext (rd, _, _, _) | VI.Ins (rd, _, _, _)
  | VI.Cvt_i_f (_, rd, _) | VI.Fcmp (_, _, rd, _, _) ->
      rd = Omnivm.Reg.sp
  | VI.Jalr (rd, _) -> rd = Omnivm.Reg.sp
  | _ -> false

let translate_instr mode e ~idx (ins : int VI.t) =
  let ret_addr = Omnivm.Exe.code_addr (idx + 1) in
  (match ins with
  | VI.Nop -> emit e Machine.Core Nop
  | VI.Li (rd, v) -> (
      match int_home rd with
      | Hzero -> emit e Machine.Core Nop
      | Hreg d -> emit e Machine.Core (Mov (R d, I v))
      | Hmem a -> emit e Machine.Core (Store (VI.W32, mabs a, I v)))
  | VI.Binop (op, rd, rs1, rs2) -> translate_binop e op rd rs1 (rop rs2)
  | VI.Binopi (op, rd, rs1, imm) -> translate_binop e op rd rs1 (I imm)
  | VI.Load (w, signed, rd, base, off) ->
      sandbox_load e mode ~base ~disp:off ~do_load:(fun m ->
          match int_home rd with
          | Hzero -> emit e Machine.Core Nop
          | Hreg d -> emit e Machine.Core (Load (w, signed, d, m))
          | Hmem a ->
              emit e Machine.Core (Load (w, signed, edx, m));
              emit e Machine.Addr (Mov (M (mabs a), R edx)))
  | VI.Store (w, rv, base, off) ->
      (* the value must be a register or immediate; eax holds the sandboxed
         address, so route memory-homed values through edx *)
      let src =
        match rop rv with
        | M m ->
            emit e Machine.Addr (Mov (R edx, M m));
            R edx
        | x -> x
      in
      sandbox_store e mode ~base ~disp:off ~do_store:(fun m ->
          emit e Machine.Core (Store (w, m, src)))
  | VI.Fload (prec, fd, base, off) ->
      sandbox_load e mode ~base ~disp:off ~do_load:(fun m ->
          fdst_apply e Machine.Addr fd (fun d ->
              emit e Machine.Core (Fload (prec, d, m))))
  | VI.Fstore (prec, fv, base, off) ->
      let v = fsrc e Machine.Addr fv fp_scratch1 in
      sandbox_store e mode ~base ~disp:off ~do_store:(fun m ->
          emit e Machine.Core (Fstore (prec, v, m)))
  | VI.Fbinop (op, prec, fd, fs1, fs2) ->
      let a = fsrc e Machine.Addr fs1 fp_scratch1 in
      let b = fsrc e Machine.Addr fs2 fp_scratch2 in
      fdst_apply e Machine.Addr fd (fun d ->
          emit e Machine.Core (Fop (op, prec, d, a, b)))
  | VI.Funop (op, _prec, fd, fs) ->
      let a = fsrc e Machine.Addr fs fp_scratch1 in
      fdst_apply e Machine.Addr fd (fun d ->
          emit e Machine.Core (Fun1 (op, d, a)))
  | VI.Fcmp (op, _prec, rd, fs1, fs2) -> (
      let a = fsrc e Machine.Addr fs1 fp_scratch1 in
      let b = fsrc e Machine.Addr fs2 fp_scratch2 in
      emit e Machine.Cmp (Fcmp (op, a, b));
      match int_home rd with
      | Hzero -> emit e Machine.Core Nop
      | Hreg d -> emit e Machine.Core (Fcc_to_reg d)
      | Hmem adr ->
          emit e Machine.Core (Fcc_to_reg edx);
          emit e Machine.Addr (Mov (M (mabs adr), R edx)))
  | VI.Fli (_prec, fd, v) ->
      let i = pool_const e v in
      fdst_apply e Machine.Addr fd (fun d ->
          emit e Machine.Core (Fld_pool (d, i)))
  | VI.Cvt_f_i (_prec, fd, rs) ->
      fdst_apply e Machine.Addr fd (fun d ->
          emit e Machine.Core (Cvt_f_i (d, rop rs)))
  | VI.Cvt_i_f (_prec, rd, fs) -> (
      let a = fsrc e Machine.Addr fs fp_scratch1 in
      match int_home rd with
      | Hzero -> emit e Machine.Core Nop
      | Hreg d -> emit e Machine.Core (Cvt_i_f (d, a))
      | Hmem adr ->
          emit e Machine.Core (Cvt_i_f (edx, a));
          emit e Machine.Addr (Mov (M (mabs adr), R edx)))
  | VI.Cvt_d_s (fd, fs) | VI.Cvt_s_d (fd, fs) ->
      (* narrow through memory: store single, load single *)
      let a = fsrc e Machine.Addr fs fp_scratch1 in
      emit e Machine.Addr (Fstore (VI.Single, a, mabs slot0));
      fdst_apply e Machine.Addr fd (fun d ->
          emit e Machine.Core (Fload (VI.Single, d, mabs slot0)))
  | VI.Br (c, a, b, addr) ->
      let a_op = rop a and b_op = rop b in
      let a_op, b_op =
        match (a_op, b_op) with
        | M _, M _ ->
            emit e Machine.Addr (Mov (R eax, a_op));
            (R eax, b_op)
        | I _, _ ->
            emit e Machine.Addr (Mov (R eax, a_op));
            (R eax, b_op)
        | _ -> (a_op, b_op)
      in
      emit e Machine.Cmp (Cmp (a_op, b_op));
      emit e Machine.Core (Jcc (c, target_of addr))
  | VI.Bri (c, a, imm, addr) ->
      let a_op =
        match rop a with
        | I v ->
            emit e Machine.Addr (Mov (R eax, I v));
            R eax
        | x -> x
      in
      emit e Machine.Cmp (Cmp (a_op, I imm));
      emit e Machine.Core (Jcc (c, target_of addr))
  | VI.J addr -> emit e Machine.Core (Jmp (target_of addr))
  | VI.Jal addr -> emit e Machine.Core (Call (target_of addr, ret_addr))
  | VI.Jr rs ->
      let x = sandbox_code_operand e mode (rop rs) in
      emit e Machine.Core (Jmp_ind x)
  | VI.Jalr (rd, rs) ->
      if rd = Omnivm.Reg.ra then begin
        let x = sandbox_code_operand e mode (rop rs) in
        emit e Machine.Core (Call_ind (x, ret_addr))
      end
      else begin
        (* unusual link register *)
        emit e Machine.Addr (Store (VI.W32, mabs slot0, R ebp));
        let x = sandbox_code_operand e mode (rop rs) in
        emit e Machine.Core (Call_ind (x, ret_addr));
        from_value e Machine.Addr rd (R ebp);
        emit e Machine.Addr (Mov (R ebp, M (mabs slot0)))
      end
  | VI.Ext (rd, rs, pos, len) ->
      let k1 = 32 - (8 * (pos + len)) in
      let k2 = 32 - (8 * len) in
      emit e Machine.Addr (Mov (R eax, rop rs));
      if k1 > 0 then emit e Machine.Addr (Shift (Shl, R eax, k1));
      emit e Machine.Core (Shift (Shr, R eax, k2));
      from_value e Machine.Addr rd (R eax)
  | VI.Ins (rd, rs, pos, len) ->
      let mask = (1 lsl (8 * len)) - 1 in
      emit e Machine.Addr (Mov (R eax, rop rs));
      emit e Machine.Addr (Alu (And, R eax, I mask));
      if pos > 0 then emit e Machine.Addr (Shift (Shl, R eax, 8 * pos));
      emit e Machine.Addr (Mov (R edx, rop rd));
      emit e Machine.Addr
        (Alu (And, R edx, I (W.of_int (lnot (mask lsl (8 * pos))))));
      emit e Machine.Core (Alu (Or, R edx, R eax));
      from_value e Machine.Addr rd (R edx)
  | VI.Hcall n -> emit e Machine.Core (Hcall n)
  | VI.Trap n -> emit e Machine.Core (Trapi n));
  if writes_sp ins && not (sp_write_safe mode ins) then resandbox_sp e mode

(* --- peephole: drop a Cmp-vs-0 whose operand was just computed --- *)

let redundant_cmp (slots : slot list) : slot list =
  let defines_flags_on (i : instr) (x : operand) =
    match (i, x) with
    | Alu (_, R d, _), R r -> d = r
    | Shift (_, R d, _), R r -> d = r
    | _ -> false
  in
  let rec go = function
    | a :: { i = Cmp (x, I 0); _ } :: (({ i = Jcc ((VI.Eq | VI.Ne), _); _ } :: _) as rest)
      when defines_flags_on a.i x ->
        a :: go rest
    | s :: rest -> s :: go rest
    | [] -> []
  in
  go slots

(* --- whole-module translation --- *)

let leaders (exe : Omnivm.Exe.t) : bool array =
  let n = Array.length exe.Omnivm.Exe.text in
  let lead = Array.make n false in
  let mark addr =
    match omni_index_of_addr addr with
    | Some i when i >= 0 && i < n -> lead.(i) <- true
    | _ -> ()
  in
  if n > 0 then lead.(0) <- true;
  mark exe.Omnivm.Exe.entry;
  List.iter (fun (_, addr) -> mark addr) exe.Omnivm.Exe.symbols;
  Array.iteri
    (fun i ins ->
      (match VI.label ins with Some addr -> mark addr | None -> ());
      match ins with
      | VI.Br _ | VI.Bri _ | VI.J _ | VI.Jal _ | VI.Jr _ | VI.Jalr _
      | VI.Trap _ ->
          if i + 1 < n then lead.(i + 1) <- true
      | _ -> ())
    exe.Omnivm.Exe.text;
  lead

let is_barrier_slot (s : slot) =
  match s.i with
  | Hcall _ | Guard_data _ | Guard_code _ | Trapi _ | Idiv _ -> true
  | _ -> false

let sched_info : slot Sched.info =
  { Sched.attrs = (fun s -> attrs s.i); is_barrier = is_barrier_slot }

let has_fp (slots : slot list) =
  List.exists
    (fun s -> match (attrs s.i).Pipeline.unit_ with
      | Pipeline.FPU -> true
      | _ -> false)
    slots

let translate ~(mode : Machine.mode) ~(opts : Machine.topts)
    (exe : Omnivm.Exe.t) : program =
  let text = exe.Omnivm.Exe.text in
  let n = Array.length text in
  let lead = leaders exe in
  let decl = Machine.new_sfi_decl () in
  let pool = { slots = []; pool = []; pool_n = 0; decl } in
  let chunks = Array.make n [] in
  for i = 0 to n - 1 do
    let e = { slots = []; pool = pool.pool; pool_n = pool.pool_n; decl } in
    translate_instr mode e ~idx:i text.(i);
    pool.pool <- e.pool;
    pool.pool_n <- e.pool_n;
    chunks.(i) <- List.rev e.slots
  done;
  let blocks = ref [] in
  let cur = ref [] in
  for i = n - 1 downto 0 do
    cur := i :: !cur;
    if lead.(i) then begin
      blocks := !cur :: !blocks;
      cur := []
    end
  done;
  (* the downward scan already leaves blocks in ascending order *)
  let blocks = !blocks in
  let quality =
    match mode with
    | Machine.Native Machine.Cc -> Sched.Critical_path
    | _ -> Sched.Greedy
  in
  let out = ref [] in
  let out_n = ref 0 in
  let addr_map = Array.make n (-1) in
  let sched_limit =
    match Sys.getenv_opt "X86_SCHED_LIMIT" with
    | Some v -> int_of_string v
    | None -> max_int
  in
  let block_counter = ref 0 in
  let emit_out s =
    out := s :: !out;
    incr out_n
  in
  List.iter
    (fun omni_indices ->
      match omni_indices with
      | [] -> ()
      | first :: _ ->
          addr_map.(first) <- !out_n;
          let slots = List.concat_map (fun i -> chunks.(i)) omni_indices in
          let slots =
            if opts.Machine.peephole then begin
              let before = List.length slots in
              let slots' =
                Trace.timed "pass.peephole" (fun () -> redundant_cmp slots)
              in
              Trace.count ~by:(before - List.length slots')
                "translate.peephole_folds";
              slots'
            end
            else slots
          in
          let rec split acc = function
            | [ s ] when is_control s.i -> (List.rev acc, Some s)
            | [] -> (List.rev acc, None)
            | s :: rest -> split (s :: acc) rest
          in
          let body, ctrl = split [] slots in
          incr block_counter;
          let schedule_this =
            opts.Machine.schedule
            && (quality = Sched.Critical_path || has_fp body)
            && !block_counter <= sched_limit
            (* the mobile x86 translator schedules only FP code (paper 4) *)
          in
          let body = Array.of_list body in
          let body =
            if schedule_this then
              Trace.timed "pass.schedule" (fun () ->
                  Sched.schedule_body sched_info ~quality body)
            else body
          in
          Array.iter emit_out body;
          (match ctrl with Some c -> emit_out c | None -> ()))
    blocks;
  let code = Array.of_list (List.rev !out) in
  let patch_target i =
    if i < 0 || i >= n || addr_map.(i) < 0 then
      terror "branch targets non-leader omni instruction %d" i
    else addr_map.(i)
  in
  Array.iteri
    (fun idx s ->
      let i' =
        match s.i with
        | Jcc (c, l) -> Jcc (c, patch_target l)
        | Jmp l -> Jmp (patch_target l)
        | Call (l, r) -> Call (patch_target l, r)
        | i -> i
      in
      code.(idx) <- { s with i = i' })
    code;
  let entry =
    match omni_index_of_addr exe.Omnivm.Exe.entry with
    | Some i when i >= 0 && i < n && addr_map.(i) >= 0 -> addr_map.(i)
    | _ -> terror "bad entry point"
  in
  { code; entry; addr_map; pool = Array.of_list (List.rev pool.pool);
    n_omni = n; decl }
