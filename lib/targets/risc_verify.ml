(* SFI verification adapter for the RISC targets: summarizes translated
   code into the abstract events checked by [Omni_sfi.Verifier].

   This is the load-time check a distrustful host can run over translated
   code before executing it. The dedicated registers may be used as address
   scratch, so the check is a small state machine per dedicated register:

     Dirty --(and reg, x, segment_mask)--> Masked
     Masked --(or reg, reg, segment_base)--> Boxed
     any other write --> Dirty

   A plain store through the data-dedicated register requires Boxed; the
   PowerPC indexed form [st rv, base_reg(dedicated)] requires exactly
   Masked (base comes from the reserved base register). Indirect branches
   through the code-dedicated register require Boxed. Because translated
   control flow can only enter at instruction-chunk leaders (enforced
   dynamically by the address map), the linear scan is sound. *)

open Risc
module V = Omni_sfi.Verifier

type seg = Seg_data | Seg_code

type ded = Dirty | Masked of seg | Boxed of seg

type state = {
  mutable sd : ded;
  mutable sc : ded;
  mutable scratch_const : int option;
      (* known constant in the translator scratch register (from lui):
         lets the scan prove statically-safe absolute stores to globals *)
}

let summarize_instr (st : state) (i : instr) : V.event =
  let get r = if r = r_sfi_data then Some st.sd else if r = r_sfi_code then Some st.sc else None in
  let set r v = if r = r_sfi_data then st.sd <- v else if r = r_sfi_code then st.sc <- v in
  let dedicated r = r = r_sfi_data || r = r_sfi_code in
  (* track the scratch register's constant value for absolute addressing *)
  (match i with
  | Lui (rd, v) when rd = r_scratch1 -> st.scratch_const <- Some v
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Alu_record (_, rd, _, _)
  | Load (_, _, rd, _, _) | Load_x (_, _, rd, _, _) | Cvt_i_f (rd, _)
  | Fcc_to_reg rd | Cc_to_reg (_, rd)
    when rd = r_scratch1 ->
      st.scratch_const <- None
  | _ -> ());
  match i with
  (* masking: enters Masked *)
  | Alu (Omnivm.Instr.And, rd, _, rm) when dedicated rd && rm = r_data_mask ->
      set rd (Masked Seg_data);
      V.Sandbox_data_mask
  | Alu (Omnivm.Instr.And, rd, _, rm) when dedicated rd && rm = r_code_mask ->
      set rd (Masked Seg_code);
      V.Sandbox_code_mask
  (* boxing: Masked -> Boxed *)
  | Alu (Omnivm.Instr.Or, rd, rs, rb) when dedicated rd && rs = rd -> (
      match (get rd, rb) with
      | Some (Masked Seg_data), b when b = r_data_base ->
          set rd (Boxed Seg_data);
          V.Sandbox_data_box
      | Some (Masked Seg_code), b when b = r_code_base ->
          set rd (Boxed Seg_code);
          V.Sandbox_code_box
      | _ ->
          set rd Dirty;
          V.Neutral)
  (* any other write to a dedicated register: address staging, fine, but
     the register becomes dirty *)
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Alu_record (_, rd, _, _)
  | Lui (rd, _) | Load (_, _, rd, _, _) | Load_x (_, _, rd, _, _)
  | Cvt_i_f (rd, _) | Fcc_to_reg rd | Cc_to_reg (_, rd)
    when dedicated rd ->
      set rd Dirty;
      V.Neutral
  (* the stack-pointer invariant *)
  | Alui ((Omnivm.Instr.Add | Omnivm.Instr.Sub), rd, rs, k)
    when rd = omni_sp && rs = omni_sp ->
      V.Sp_adjust_const k
  | Alu (Omnivm.Instr.And, rd, _, rm) when rd = omni_sp && rm = r_data_mask ->
      V.Neutral (* first half of an sp re-sandbox *)
  | Alu (Omnivm.Instr.Or, rd, rs, rb)
    when rd = omni_sp && rs = omni_sp && rb = r_data_base ->
      V.Neutral
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Alu_record (_, rd, _, _)
  | Lui (rd, _) | Load (_, _, rd, _, _) | Load_x (_, _, rd, _, _)
  | Cvt_i_f (rd, _) | Fcc_to_reg rd | Cc_to_reg (_, rd)
    when rd = omni_sp ->
      (* unsafe sp write: only acceptable if immediately re-sandboxed; the
         translator emits the and/or pair right after, which the two
         Neutral cases above recognize. A bare clobber ends the scan. *)
      V.Sp_clobber (string_of_instr i)
  (* the scratch register receiving a known constant is a positive fact
     (it licenses lui-based absolute stores), so it carries an event *)
  | Lui (rd, _) when rd = r_scratch1 -> V.Lui_const
  (* stores *)
  | Store (_, _, base, disp) | Fstore (_, base, disp) | Fstore_s (_, base, disp)
    -> (
      match get base with
      | Some (Boxed Seg_data) -> V.Store_via_dedicated { disp }
      | Some _ -> V.Store_unsafe (string_of_instr i)
      | None ->
          if base = omni_sp then V.Store_via_sp { disp }
          else if base = r_zero && Omnivm.Layout.in_data disp then V.Store_abs
          else if base = r_gp then V.Store_gp
            (* gp is a reserved in-segment constant *)
          else if
            base = r_scratch1
            && (match st.scratch_const with
               | Some v -> Omnivm.Layout.in_data (v + disp)
               | None -> false)
          then V.Store_via_lui (* lui-based absolute store to a known global *)
          else V.Store_unsafe (string_of_instr i))
  | Store_x (_, _, b1, b2) | Fstore_x (_, b1, b2) ->
      if b1 = r_data_base && get b2 = Some (Masked Seg_data) then
        V.Store_indexed
      else V.Store_unsafe (string_of_instr i)
  (* indirect control flow *)
  | Jmp_ind r | Call_ind (r, _) -> (
      match get r with
      | Some (Boxed Seg_code) -> V.Jump_via_dedicated
      | _ -> V.Jump_unsafe (string_of_instr i))
  | Guard_data _ | Guard_code _ -> V.Neutral
  | Alu _ | Alui _ | Alu_record _ | Lui _ | Load _ | Load_x _ | Fload _
  | Fload_s _ | Fload_x _ | Fld_pool _ | Fop _ | Fun1 _ | Fcmp _
  | Fcc_to_reg _ | Cvt_f_i _ | Cvt_i_f _ | Cvt_d_s _ | Cvt_s_d _ | Cmp _
  | Cmpi _ | Br_cc _ | Br_cmp _ | Fbr _ | J _ | Call _ | Cc_to_reg _
  | Trapi _ | Hcall _ | Nop ->
      V.Neutral

(* The sp-clobber exception: the translator re-sandboxes sp right after an
   arbitrary write. Recognize the [write sp; and sp,sp,dm; or sp,sp,db]
   triple and neutralize the clobber. *)
let summarize (p : program) : V.event array =
  let st = { sd = Dirty; sc = Dirty; scratch_const = None } in
  let reset () =
    st.sd <- Dirty;
    st.sc <- Dirty;
    st.scratch_const <- None
  in
  (* At control-flow boundaries all state resets (a conservative join).
     On delay-slot architectures the reset happens after the delay slot,
     which logically belongs before its branch. *)
  let n = Array.length p.code in
  let events = Array.make n V.Neutral in
  let reset_after = ref (-1) in
  for i = 0 to n - 1 do
    events.(i) <- summarize_instr st p.code.(i).i;
    if !reset_after = i then reset ();
    if is_control p.code.(i).i then
      if p.cfg.has_delay_slot then reset_after := i + 1 else reset ()
  done;
  Array.iteri
    (fun i e ->
      match e with
      | V.Sp_clobber _
        when i + 2 < Array.length events
             && (match (p.code.(i + 1).i, p.code.(i + 2).i) with
                | ( Alu (Omnivm.Instr.And, a, _, m),
                    Alu (Omnivm.Instr.Or, b, _, base) ) ->
                    a = omni_sp && m = r_data_mask && b = omni_sp
                    && base = r_data_base
                | _ -> false) ->
          events.(i) <- V.Sp_resandboxed
      | V.Sp_clobber _
        when i + 1 < Array.length events
             && (match p.code.(i + 1).i with
                | Guard_data r -> r = omni_sp
                | _ -> false) ->
          events.(i) <- V.Sp_resandboxed
      | _ -> ())
    events;
  events

(* Verify a translated program satisfies the SFI invariants. Note: this
   only makes sense for code translated in Sandbox mode; Guard-mode checks
   and unprotected native code will (correctly) fail. *)
let verify ?max_disp (p : program) = V.verify ?max_disp (summarize p)

(* Certifying verification: the same scan, but on acceptance it returns
   the safety obligations as a witness. The translator's declared masking
   counts are cross-checked downstream (Omni_cert.Check), tying the
   witness to what the translator actually laid down. *)
let certify ?max_disp (p : program) :
    (Omni_sfi.Witness.obligation array, V.failure) result =
  V.certify ?max_disp (summarize p)
