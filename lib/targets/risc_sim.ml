(* Functional + cycle-approximate simulator for translated RISC code.

   Executes the structured native instructions over the module's segmented
   memory, dispatches host calls through the runtime host, models branch
   delay slots (with Sparc-style annulment), and feeds every retired
   instruction to the generic pipeline cost model. *)

open Risc
module W = Omni_util.Word32
module VI = Omnivm.Instr
module Mem = Omnivm.Memory

type state = {
  prog : program;
  regs : int array; (* 32, canonical word32; index 0 pinned to zero *)
  fregs : float array; (* 32 *)
  mutable cc : int * int; (* last compare operand pair *)
  mutable fcc : bool;
  mutable pc : int; (* native index *)
  mem : Mem.t;
  host : Omni_runtime.Host.t;
  mutable handler : int; (* omni code address, 0 = none *)
  mutable exited : int option;
  stats : Machine.stats;
  pipe : Pipeline.t;
}

let get st r = if r = 0 then 0 else st.regs.(r)
let set st r v = if r <> 0 then st.regs.(r) <- W.of_int v

let create (prog : program) mem host =
  let st =
    {
      prog;
      regs = Array.make 32 0;
      fregs = Array.make 32 0.0;
      cc = (0, 0);
      fcc = false;
      pc = prog.entry;
      mem;
      host;
      handler = 0;
      exited = None;
      stats = Machine.new_stats ();
      pipe = Pipeline.create (pipeline_config prog.cfg);
    }
  in
  let module L = Omnivm.Layout in
  set st r_data_mask L.data_mask;
  set st r_data_base L.data_base;
  set st r_code_mask (L.code_mask land lnot 3);
  set st r_code_base L.code_base;
  set st r_gp (L.data_base + (1 lsl (prog.cfg.imm_bits - 1)));
  set st (map_reg Omnivm.Reg.sp) L.initial_sp;
  set st (map_reg Omnivm.Reg.gp) L.data_base;
  st

let fault f = raise (Omnivm.Fault.Vm_fault f)

(* Map an OmniVM code address to a native index; faults on addresses that
   are not valid entry points (function entries, branch targets, return
   points). *)
let native_of_omni st addr =
  let off = addr - Omnivm.Layout.code_base in
  if off < 0 || off land 3 <> 0 || off / 4 >= Array.length st.prog.addr_map
  then fault (Access_violation { addr; access = Execute })
  else
    let n = st.prog.addr_map.(off / 4) in
    if n < 0 then fault (Access_violation { addr; access = Execute })
    else n

let eff st base disp = W.to_unsigned (W.add (get st base) (W.of_int disp))

let do_load st w signed addr =
  match (w, signed) with
  | VI.W8, false -> Mem.load8 st.mem addr
  | VI.W8, true -> W.sext8 (Mem.load8 st.mem addr)
  | VI.W16, false -> Mem.load16 st.mem addr
  | VI.W16, true -> W.sext16 (Mem.load16 st.mem addr)
  | VI.W32, _ -> Mem.load32 st.mem addr

let do_store st w addr v =
  match w with
  | VI.W8 -> Mem.store8 st.mem addr v
  | VI.W16 -> Mem.store16 st.mem addr v
  | VI.W32 -> Mem.store32 st.mem addr v

let round_single f = Int32.float_of_bits (Int32.bits_of_float f)

let hcall st n =
  let req =
    {
      Omni_runtime.Host.index = n;
      arg = (fun i -> get st (map_reg (1 + i)));
      farg = (fun i -> st.fregs.(1 + i));
      set_ret = (fun v -> set st (map_reg 1) v);
      mem = st.mem;
    }
  in
  match Omni_runtime.Host.handle st.host req with
  | Omni_runtime.Host.Continue -> ()
  | Omni_runtime.Host.Exit code -> st.exited <- Some code
  | Omni_runtime.Host.Set_handler addr -> st.handler <- addr

(* Execute a non-control instruction. *)
let exec_simple st (i : instr) =
  match i with
  | Alu (op, rd, ra, rb) -> set st rd (VI.eval_binop op (get st ra) (get st rb))
  | Alui (op, rd, ra, imm) ->
      set st rd (VI.eval_binop op (get st ra) (W.of_int imm))
  | Alu_record (op, rd, ra, rb) ->
      let v = VI.eval_binop op (get st ra) (get st rb) in
      set st rd v;
      st.cc <- (v, 0)
  | Lui (rd, v) -> set st rd (W.of_int v)
  | Load (w, s, rd, b, d) -> set st rd (do_load st w s (eff st b d))
  | Load_x (w, s, rd, a, b) ->
      set st rd (do_load st w s (W.to_unsigned (W.add (get st a) (get st b))))
  | Store (w, rv, b, d) -> do_store st w (eff st b d) (get st rv)
  | Store_x (w, rv, a, b) ->
      do_store st w (W.to_unsigned (W.add (get st a) (get st b))) (get st rv)
  | Fload (fd, b, d) -> st.fregs.(fd) <- Mem.load_float st.mem (eff st b d)
  | Fstore (fv, b, d) -> Mem.store_float st.mem (eff st b d) st.fregs.(fv)
  | Fload_s (fd, b, d) -> st.fregs.(fd) <- Mem.load_single st.mem (eff st b d)
  | Fstore_s (fv, b, d) -> Mem.store_single st.mem (eff st b d) st.fregs.(fv)
  | Fload_x (fd, a, b) ->
      st.fregs.(fd) <-
        Mem.load_float st.mem (W.to_unsigned (W.add (get st a) (get st b)))
  | Fstore_x (fv, a, b) ->
      Mem.store_float st.mem
        (W.to_unsigned (W.add (get st a) (get st b)))
        st.fregs.(fv)
  | Fld_pool (fd, i) -> st.fregs.(fd) <- st.prog.pool.(i)
  | Fop (op, prec, fd, fa, fb) ->
      let a = st.fregs.(fa) and b = st.fregs.(fb) in
      let v =
        match op with
        | VI.Fadd -> a +. b
        | VI.Fsub -> a -. b
        | VI.Fmul -> a *. b
        | VI.Fdiv -> a /. b
      in
      st.fregs.(fd) <-
        (match prec with VI.Single -> round_single v | VI.Double -> v)
  | Fun1 (op, fd, fa) ->
      let a = st.fregs.(fa) in
      st.fregs.(fd) <-
        (match op with
        | VI.Fneg -> -.a
        | VI.Fabs -> Float.abs a
        | VI.Fmov -> a)
  | Fcmp (op, fa, fb) ->
      let a = st.fregs.(fa) and b = st.fregs.(fb) in
      st.fcc <-
        (match op with VI.Feq -> a = b | VI.Flt -> a < b | VI.Fle -> a <= b)
  | Fcc_to_reg rd -> set st rd (if st.fcc then 1 else 0)
  | Cvt_f_i (fd, ra) -> st.fregs.(fd) <- float_of_int (get st ra)
  | Cvt_i_f (rd, fa) ->
      let f = st.fregs.(fa) in
      let v =
        if Float.is_nan f then 0
        else if f >= 2147483648.0 then W.max_int32
        else if f <= -2147483649.0 then W.min_int32
        else W.of_int (int_of_float f)
      in
      set st rd v
  | Cvt_d_s (fd, fa) | Cvt_s_d (fd, fa) ->
      st.fregs.(fd) <- round_single st.fregs.(fa)
  | Cmp (a, b) -> st.cc <- (get st a, get st b)
  | Cmpi (a, imm) -> st.cc <- (get st a, W.of_int imm)
  | Cc_to_reg (c, rd) ->
      let a, b = st.cc in
      set st rd (if VI.eval_cond c a b then 1 else 0)
  | Guard_data r ->
      let a = W.to_unsigned (get st r) in
      if not (Omnivm.Layout.in_data a) then
        fault (Access_violation { addr = a; access = Write })
  | Guard_code r ->
      let a = W.to_unsigned (get st r) in
      if not (Omnivm.Layout.in_code a) then
        fault (Access_violation { addr = a; access = Execute })
  | Trapi n -> fault (Explicit_trap n)
  | Hcall n -> hcall st n
  | Nop -> ()
  | Br_cc _ | Br_cmp _ | Fbr _ | J _ | Call _ | Call_ind _ | Jmp_ind _ ->
      assert false

let account st (s : slot) ~taken =
  let st_ = st.stats in
  st_.Machine.instructions <- st_.Machine.instructions + 1;
  let oi = Machine.origin_index s.origin in
  st_.Machine.by_origin.(oi) <- st_.Machine.by_origin.(oi) + 1;
  if s.origin = Machine.Core then
    st_.Machine.omni_instructions <- st_.Machine.omni_instructions + 1;
  let a = attrs st.prog.cfg s.i in
  if a.Pipeline.is_load then st_.Machine.loads <- st_.Machine.loads + 1;
  if a.Pipeline.is_store then st_.Machine.stores <- st_.Machine.stores + 1;
  (match s.i with
  | Br_cc _ | Br_cmp _ | Fbr _ ->
      st_.Machine.branches <- st_.Machine.branches + 1;
      if taken then st_.Machine.taken_branches <- st_.Machine.taken_branches + 1
  | _ -> ());
  Pipeline.step st.pipe a ~taken_branch:taken

(* Evaluate whether a control instruction branches, and to where. *)
let control_target st (i : instr) : int option =
  match i with
  | Br_cc (c, l) ->
      let a, b = st.cc in
      if VI.eval_cond c a b then Some l else None
  | Br_cmp (c, a, b, l) ->
      if VI.eval_cond c (get st a) (get st b) then Some l else None
  | Fbr (flag, l) -> if st.fcc = flag then Some l else None
  | J l -> Some l
  | Call (l, ret) ->
      set st omni_ra ret;
      Some l
  | Call_ind (r, ret) ->
      let target = native_of_omni st (W.to_unsigned (get st r)) in
      set st omni_ra ret;
      Some target
  | Jmp_ind r -> Some (native_of_omni st (W.to_unsigned (get st r)))
  | _ -> assert false

let deliver_fault st f =
  if st.handler = 0 then raise (Omnivm.Fault.Vm_fault f)
  else begin
    let h = st.handler in
    st.handler <- 0;
    set st (map_reg 1) (Omnivm.Fault.code f);
    st.pc <- native_of_omni st h
  end

exception Out_of_fuel_exn

let run ?(fuel = max_int) ?watchdog (prog : program) mem host :
    Machine.outcome * Machine.stats * state =
  let st = create prog mem host in
  let code = prog.code in
  let n = Array.length code in
  let fuel_left = ref fuel in
  let spend () =
    decr fuel_left;
    if !fuel_left < 0 then raise Out_of_fuel_exn
  in
  (* Same countdown scheme as Interp.run: the clock is only read every
     [poll_every] native instructions; expiry raises Deadline_exceeded
     through the ordinary fault-delivery path, preserving engine parity. *)
  let poll =
    match watchdog with
    | None -> fun () -> ()
    | Some w ->
        let every = Omnivm.Watchdog.poll_every w in
        let left = ref every in
        fun () ->
          decr left;
          if !left <= 0 then begin
            left := every;
            Omnivm.Watchdog.check w
          end
  in
  let step () =
    poll ();
    if st.pc < 0 || st.pc >= n then
      fault
        (Access_violation
           { addr = st.pc; access = Execute })
    else begin
      let s = Array.unsafe_get code st.pc in
      spend ();
      if is_control s.i then begin
        let target = control_target st s.i in
        account st s ~taken:(target <> None);
        if prog.cfg.has_delay_slot then begin
          (* execute the delay slot unless annulled *)
          let slot_i = st.pc + 1 in
          if slot_i < n then begin
            let ds = Array.unsafe_get code slot_i in
            let annulled = s.annul && target = None in
            if not annulled then begin
              spend ();
              account st ds ~taken:false;
              exec_simple st ds.i
            end
          end;
          st.pc <- (match target with Some t -> t | None -> st.pc + 2)
        end
        else st.pc <- (match target with Some t -> t | None -> st.pc + 1)
      end
      else begin
        account st s ~taken:false;
        exec_simple st s.i;
        st.pc <- st.pc + 1
      end
    end
  in
  let outcome =
    let rec go () =
      match st.exited with
      | Some code -> Machine.Exited code
      | None -> (
          match step () with
          | () -> go ()
          | exception Omnivm.Fault.Vm_fault f -> (
              match deliver_fault st f with
              | () -> go ()
              | exception Omnivm.Fault.Vm_fault f -> Machine.Faulted f)
          | exception W.Division_by_zero -> (
              match deliver_fault st Omnivm.Fault.Division_by_zero with
              | () -> go ()
              | exception Omnivm.Fault.Vm_fault f -> Machine.Faulted f))
    in
    try go () with Out_of_fuel_exn -> Machine.Out_of_fuel
  in
  st.stats.Machine.cycles <- Pipeline.cycles st.pipe;
  (outcome, st.stats, st)
