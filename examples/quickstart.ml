(* Quickstart: the complete Omniware round trip in one file.

     dune exec examples/quickstart.exe

   1. Compile a C program to a mobile OmniVM module (what a producer does).
   2. The module is now a byte string: it could be attached to a document,
      served from a web page, or mailed -- unchanged for every target.
   3. A host loads the bytes, translates them with software fault isolation
      for its own processor, and runs them. *)

module Api = Omniware.Api

let program =
  {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main(void) {
  int i;
  print_str("fib: ");
  for (i = 1; i <= 10; i++) {
    print_int(fib(i));
    putchar(' ');
  }
  putchar('\n');
  return 0;
}
|}

let () =
  (* producer side: one artifact for every architecture *)
  let wire = Api.compile ~name:"quickstart" program in
  Printf.printf "compiled mobile module: %d bytes of portable OmniVM code\n\n"
    (String.length wire);
  (* -o FILE: also save the module (e.g. to feed omnirun) *)
  (match Array.to_list Sys.argv with
  | _ :: "-o" :: path :: _ ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc wire);
      Printf.printf "wrote %s\n\n" path
  | _ -> ());
  (* host side: pick the processor this host happens to have *)
  let host_arch = Omni_targets.Arch.X86 in
  let r =
    Api.run_wire ~engine:(Omni_targets.Arch.name host_arch) ~sfi:true wire
  in
  print_string r.Api.output;
  Printf.printf
    "\n[executed on simulated %s: %d native instructions, %d cycles, exit %d]\n"
    (Omni_targets.Arch.name host_arch)
    r.Api.instructions r.Api.cycles r.Api.exit_code;
  (* the same bytes run identically on the OmniVM reference interpreter *)
  let r2 = Api.run_wire ~engine:"interp" wire in
  assert (r2.Api.output = r.Api.output);
  print_endline "[interpreter produced identical output]"
