(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index and EXPERIMENTS.md
   for recorded results).

     dune exec bench/main.exe                 -- everything, test size
     dune exec bench/main.exe -- --size ref   -- everything, reference size
     dune exec bench/main.exe -- table1 figure1 speed bechamel ...

   All relative-time numbers come from the simulated pipeline cycle counts;
   [speed] and [bechamel] measure real wall-clock translation time (the
   paper's load-time-matters argument), the latter with statistically
   sound measurement via Bechamel. *)

module E = Omni_harness.Experiments
module W = Omni_workloads.Workloads

let sections =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1";
    "figure2"; "ablation"; "ablation-reads"; "speed"; "service"; "remote";
    "resilience"; "isolation"; "phases"; "cert"; "concurrency"; "guest";
    "fastpath"; "bechamel" ]

(* --- the persisted snapshot + regression gate (BENCH_9.json) ----------

   [json] re-measures every subsystem's hot paths and writes BENCH_9.json
   at the repo root. [gate] additionally diffs the new numbers against
   the previous snapshot's [hot_paths] before overwriting it: any named
   path more than 20% slower fails the gate (exit 1); hot paths that only
   exist in the new snapshot are skipped (and logged to stderr, along
   with baseline paths the new snapshot dropped), so adding or retiring
   a subsystem never trips the gate silently. The first run (falling
   back to the prior BENCH_8.json baseline when present) seeds the new
   file and passes. *)

let snapshot_file = "BENCH_9.json"

(* Oldest-to-newest fallbacks: gate against the last PR's snapshot the
   first time this one runs. *)
let baseline_files = [ snapshot_file; "BENCH_8.json" ]

(* Extract the flat  "name": int  pairs of the "hot_paths" object. The
   writer is ours and the schema is stable, so a scanner suffices — no
   JSON library in the tree. *)
let hot_paths_of_json (text : string) : (string * int) list =
  match String.index_opt text '{' with
  | None -> []
  | Some _ -> (
      let key = "\"hot_paths\"" in
      let rec find i =
        if i + String.length key > String.length text then None
        else if String.sub text i (String.length key) = key then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> []
      | Some i ->
          let start = String.index_from text i '{' + 1 in
          let stop = String.index_from text start '}' in
          let body = String.sub text start (stop - start) in
          String.split_on_char ',' body
          |> List.filter_map (fun line ->
                 match String.split_on_char ':' line with
                 | [ name; value ] -> (
                     let name = String.trim name in
                     let name =
                       if String.length name >= 2 && name.[0] = '"' then
                         String.sub name 1 (String.length name - 2)
                       else name
                     in
                     match int_of_string_opt (String.trim value) with
                     | Some v -> Some (name, v)
                     | None -> None)
                 | _ -> None))

let write_snapshot ~size =
  let json = E.bench_snapshot ~size in
  let oc = open_out snapshot_file in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s (%d hot paths)\n" snapshot_file
    (List.length (hot_paths_of_json json));
  json

let run_gate ~size =
  let previous =
    match List.find_opt Sys.file_exists baseline_files with
    | None -> None
    | Some file ->
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some (hot_paths_of_json s)
  in
  let fresh = hot_paths_of_json (write_snapshot ~size) in
  match previous with
  | None | Some [] ->
      Printf.printf "bench-gate: baseline seeded (%d hot paths); PASS\n"
        (List.length fresh)
  | Some old ->
      let threshold = 1.20 in
      (* Un-gated keys go to stderr so a silently-shrinking gate is
         visible in CI logs without failing the run. *)
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name old) then
            Printf.eprintf "bench-gate: new hot path %s (no baseline; \
                            skipped this run, gated next)\n" name)
        fresh;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name fresh) then
            Printf.eprintf "bench-gate: baseline hot path %s missing from \
                            the new snapshot (skipped)\n" name)
        old;
      let regressions =
        List.filter_map
          (fun (name, now) ->
            match List.assoc_opt name old with
            | Some before
              when before > 0
                   && float_of_int now > threshold *. float_of_int before ->
                Some (name, before, now)
            | _ -> None)
          fresh
      in
      List.iter
        (fun (name, before, now) ->
          Printf.printf "bench-gate: REGRESSION %s: %dus -> %dus (%+.0f%%)\n"
            name before now
            (100. *. (float_of_int now /. float_of_int before -. 1.)))
        regressions;
      if regressions = [] then
        Printf.printf "bench-gate: %d hot paths within %.0f%% of the \
                       previous snapshot; PASS\n"
          (List.length fresh)
          (100. *. (threshold -. 1.))
      else begin
        Printf.printf "bench-gate: FAIL (%d of %d hot paths regressed)\n"
          (List.length regressions) (List.length fresh);
        exit 1
      end

let run_section ~size name =
  let t0 = Unix.gettimeofday () in
  (match name with
  | "table1" -> print_string (E.table1 ~size)
  | "table2" -> print_string (E.table2 ~size)
  | "table3" -> print_string (E.table3 ~size)
  | "table4" -> print_string (E.table4 ~size)
  | "table5" -> print_string (E.table5 ~size)
  | "table6" -> print_string (E.table6 ~size)
  | "figure1" -> print_string (E.figure1 ~size)
  | "figure2" -> print_string (E.figure2 ())
  | "ablation" -> print_string (E.ablation_sfi_opt ~size)
  | "ablation-reads" -> print_string (E.ablation_read_protection ~size)
  | "speed" -> print_string (E.translation_speed ~size)
  | "service" -> print_string (E.service_amortization ~size)
  | "remote" -> print_string (E.remote_overhead ~size)
  | "resilience" -> print_string (E.resilience ~size)
  | "isolation" -> print_string (E.isolation ~size)
  | "phases" -> print_string (E.phase_breakdown ~size)
  | "cert" -> print_string (E.cert_amortization ~size)
  | "concurrency" -> print_string (E.concurrency ~size)
  | "guest" -> print_string (E.guest_front_end ~size)
  | "fastpath" -> print_string (E.fastpath ~size)
  | "json" -> ignore (write_snapshot ~size)
  | "gate" -> run_gate ~size
  | "bechamel" -> Bechamel_bench.run ~size
  | other -> Printf.eprintf "unknown section %s\n" other);
  Printf.printf "[%s took %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0)

let () =
  let size = ref W.Test in
  let picked = ref [] in
  let spec =
    [ ("--size",
       Arg.String (fun s -> size := if s = "ref" then W.Ref else W.Test),
       "test|ref workload size (default test)") ]
  in
  Arg.parse spec (fun s -> picked := s :: !picked) "bench [sections]";
  let todo = if !picked = [] then sections else List.rev !picked in
  Printf.printf "omniware benchmark harness (size: %s)\n\n%!"
    (match !size with W.Test -> "test" | W.Ref -> "ref");
  List.iter (run_section ~size:!size) todo
