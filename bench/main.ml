(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index and EXPERIMENTS.md
   for recorded results).

     dune exec bench/main.exe                 -- everything, test size
     dune exec bench/main.exe -- --size ref   -- everything, reference size
     dune exec bench/main.exe -- table1 figure1 speed bechamel ...

   All relative-time numbers come from the simulated pipeline cycle counts;
   [speed] and [bechamel] measure real wall-clock translation time (the
   paper's load-time-matters argument), the latter with statistically
   sound measurement via Bechamel. *)

module E = Omni_harness.Experiments
module W = Omni_workloads.Workloads

let sections =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1";
    "figure2"; "ablation"; "ablation-reads"; "speed"; "service"; "remote";
    "resilience"; "isolation"; "phases"; "bechamel" ]

let run_section ~size name =
  let t0 = Unix.gettimeofday () in
  (match name with
  | "table1" -> print_string (E.table1 ~size)
  | "table2" -> print_string (E.table2 ~size)
  | "table3" -> print_string (E.table3 ~size)
  | "table4" -> print_string (E.table4 ~size)
  | "table5" -> print_string (E.table5 ~size)
  | "table6" -> print_string (E.table6 ~size)
  | "figure1" -> print_string (E.figure1 ~size)
  | "figure2" -> print_string (E.figure2 ())
  | "ablation" -> print_string (E.ablation_sfi_opt ~size)
  | "ablation-reads" -> print_string (E.ablation_read_protection ~size)
  | "speed" -> print_string (E.translation_speed ~size)
  | "service" -> print_string (E.service_amortization ~size)
  | "remote" -> print_string (E.remote_overhead ~size)
  | "resilience" -> print_string (E.resilience ~size)
  | "isolation" -> print_string (E.isolation ~size)
  | "phases" -> print_string (E.phase_breakdown ~size)
  | "bechamel" -> Bechamel_bench.run ~size
  | other -> Printf.eprintf "unknown section %s\n" other);
  Printf.printf "[%s took %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0)

let () =
  let size = ref W.Test in
  let picked = ref [] in
  let spec =
    [ ("--size",
       Arg.String (fun s -> size := if s = "ref" then W.Ref else W.Test),
       "test|ref workload size (default test)") ]
  in
  Arg.parse spec (fun s -> picked := s :: !picked) "bench [sections]";
  let todo = if !picked = [] then sections else List.rev !picked in
  Printf.printf "omniware benchmark harness (size: %s)\n\n%!"
    (match !size with W.Test -> "test" | W.Ref -> "ref");
  List.iter (run_section ~size:!size) todo
