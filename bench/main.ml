(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index and EXPERIMENTS.md
   for recorded results).

     dune exec bench/main.exe                 -- everything, test size
     dune exec bench/main.exe -- --size ref   -- everything, reference size
     dune exec bench/main.exe -- table1 figure1 speed bechamel ...

   All relative-time numbers come from the simulated pipeline cycle counts;
   [speed] and [bechamel] measure real wall-clock translation time (the
   paper's load-time-matters argument), the latter with statistically
   sound measurement via Bechamel. *)

module E = Omni_harness.Experiments
module Gate = Omni_harness.Gate
module W = Omni_workloads.Workloads

let sections =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1";
    "figure2"; "ablation"; "ablation-reads"; "speed"; "service"; "remote";
    "resilience"; "isolation"; "phases"; "cert"; "concurrency"; "guest";
    "fastpath"; "persistence"; "bechamel" ]

(* --- the persisted snapshot + regression gate (BENCH_10.json) ---------

   [json] re-measures every subsystem's hot paths and writes BENCH_10.json
   at the repo root. [gate] additionally diffs the new numbers against
   the previous snapshot's [hot_paths] before overwriting it: any named
   path more than 20% slower (and by more than 10us absolute — 20% of a
   30us path is timer noise) — in the per-key minimum over up to five
   measurement attempts, so a one-off host interference spike never
   fails a build — fails the gate (exit 1); hot paths that only
   exist in one of the two snapshots are skipped and summarized in one
   stderr line, so adding or retiring a subsystem never trips the gate —
   or shrinks it — silently. The first run (falling back to the prior
   BENCH_9.json baseline when present) seeds the new file and passes.
   The classification logic lives in Omni_harness.Gate, where the test
   suite exercises it against synthetic snapshot pairs. *)

let snapshot_file = "BENCH_10.json"

(* Oldest-to-newest fallbacks: gate against the last PR's snapshot the
   first time this one runs. *)
let baseline_files = [ snapshot_file; "BENCH_9.json" ]

let write_snapshot ~size =
  let json = E.bench_snapshot ~size in
  let oc = open_out snapshot_file in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s (%d hot paths)\n" snapshot_file
    (List.length (Gate.hot_paths_of_json json));
  json

let run_gate ~size =
  let previous =
    match List.find_opt Sys.file_exists baseline_files with
    | None -> None
    | Some file ->
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some (Gate.hot_paths_of_json s)
  in
  let fresh = Gate.hot_paths_of_json (write_snapshot ~size) in
  match previous with
  | None | Some [] ->
      Printf.printf "bench-gate: baseline seeded (%d hot paths); PASS\n"
        (List.length fresh)
  | Some old ->
      (* A regression must survive re-measurement: on FAIL, re-run the
         snapshot (up to [max_attempts] total) and gate on the per-key
         minimum across attempts — the stable estimator under host
         interference. A genuine slowdown is slow in every attempt; a
         scheduler or frequency-scaling spike is not. The written
         BENCH_10.json is the last attempt's full snapshot. *)
      let max_attempts = 5 in
      let rec attempt n fresh =
        let d = Gate.diff ~baseline:old ~fresh () in
        if d.Gate.d_regressions <> [] && n < max_attempts then begin
          Printf.eprintf
            "bench-gate: %d hot path(s) over threshold on attempt %d/%d; \
             re-measuring\n%!"
            (List.length d.Gate.d_regressions) n max_attempts;
          (* brief cool-down: back-to-back attempts measure a host still
             hot (and frequency-throttled) from the previous one *)
          Unix.sleep 3;
          attempt (n + 1)
            (Gate.merge_min fresh
               (Gate.hot_paths_of_json (write_snapshot ~size)))
        end
        else d
      in
      let d = attempt 1 fresh in
      (* Un-gated keys go to stderr so a silently-shrinking gate is
         visible in CI logs without failing the run. *)
      (match Gate.skip_summary d with
      | None -> ()
      | Some line -> prerr_endline line);
      List.iter
        (fun r -> print_endline (Gate.render_regression r))
        d.Gate.d_regressions;
      if d.Gate.d_regressions = [] then
        Printf.printf "bench-gate: %d hot paths within %.0f%% of the \
                       previous snapshot; PASS\n"
          d.Gate.d_compared
          (100. *. (Gate.default_threshold -. 1.))
      else begin
        Printf.printf "bench-gate: FAIL (%d of %d hot paths regressed)\n"
          (List.length d.Gate.d_regressions)
          d.Gate.d_compared;
        exit 1
      end

let run_section ~size name =
  let t0 = Unix.gettimeofday () in
  (match name with
  | "table1" -> print_string (E.table1 ~size)
  | "table2" -> print_string (E.table2 ~size)
  | "table3" -> print_string (E.table3 ~size)
  | "table4" -> print_string (E.table4 ~size)
  | "table5" -> print_string (E.table5 ~size)
  | "table6" -> print_string (E.table6 ~size)
  | "figure1" -> print_string (E.figure1 ~size)
  | "figure2" -> print_string (E.figure2 ())
  | "ablation" -> print_string (E.ablation_sfi_opt ~size)
  | "ablation-reads" -> print_string (E.ablation_read_protection ~size)
  | "speed" -> print_string (E.translation_speed ~size)
  | "service" -> print_string (E.service_amortization ~size)
  | "remote" -> print_string (E.remote_overhead ~size)
  | "resilience" -> print_string (E.resilience ~size)
  | "isolation" -> print_string (E.isolation ~size)
  | "phases" -> print_string (E.phase_breakdown ~size)
  | "cert" -> print_string (E.cert_amortization ~size)
  | "concurrency" -> print_string (E.concurrency ~size)
  | "guest" -> print_string (E.guest_front_end ~size)
  | "fastpath" -> print_string (E.fastpath ~size)
  | "persistence" -> print_string (E.persistence ~size)
  | "json" -> ignore (write_snapshot ~size)
  | "gate" -> run_gate ~size
  | "bechamel" -> Bechamel_bench.run ~size
  | other -> Printf.eprintf "unknown section %s\n" other);
  Printf.printf "[%s took %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0)

let () =
  let size = ref W.Test in
  let picked = ref [] in
  let spec =
    [ ("--size",
       Arg.String (fun s -> size := if s = "ref" then W.Ref else W.Test),
       "test|ref workload size (default test)") ]
  in
  Arg.parse spec (fun s -> picked := s :: !picked) "bench [sections]";
  let todo = if !picked = [] then sections else List.rev !picked in
  Printf.printf "omniware benchmark harness (size: %s)\n\n%!"
    (match !size with W.Test -> "test" | W.Ref -> "ref");
  List.iter (run_section ~size:!size) todo
